package workloads

import (
	"fmt"
	"math"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// Jacobi (§5.2): one time step of the 2D heat-transfer stencil
//
//	T_new = T_old + k*(T_top + T_bottom + T_left + T_right - 4*T_old)
//
// plus a position-dependent source term that requires the six
// integer-to-float conversions the paper's §4.7 analysis reports as
// unavoidable.
//
// Variants:
//
//	naive    — five scalar global loads per point (spatially local:
//	           the §4.6 texture recommendation fires)
//	texture  — the loads replaced with tex2D() fetches (the paper's fix)
//	restrict — loads through the read-only cache (const __restrict__, §4.5)
//	shared   — 16x16 tile staged in shared memory, halo from global

// JacobiVariant selects the §5.2 kernel version.
type JacobiVariant int

const (
	JacobiNaive JacobiVariant = iota
	JacobiTexture
	JacobiRestrict
	JacobiShared
)

func (v JacobiVariant) String() string {
	switch v {
	case JacobiNaive:
		return "naive"
	case JacobiTexture:
		return "texture"
	case JacobiRestrict:
		return "restrict"
	default:
		return "shared"
	}
}

const (
	jacobiBx = 16
	jacobiBy = 16
	jacobiK  = float32(0.2)
)

var jacobiSource = []string{
	/* 1 */ `// 2D heat transfer, one Jacobi iteration (isotropic material)`,
	/* 2 */ `__global__ void jacobi_step(const float* in, float* out, int W, int H, float k) {`,
	/* 3 */ `  int x = blockIdx.x * blockDim.x + threadIdx.x;`,
	/* 4 */ `  int y = blockIdx.y * blockDim.y + threadIdx.y;`,
	/* 5 */ `  if (x >= W || y >= H) return;`,
	/* 6 */ `  int xm = max(x-1, 0), xp = min(x+1, W-1);`,
	/* 7 */ `  int ym = max(y-1, 0), yp = min(y+1, H-1);`,
	/* 8 */ `  float told   = in[y*W + x];`,
	/* 9 */ `  float top    = in[ym*W + x], bottom = in[yp*W + x];`,
	/* 10 */ `  float left   = in[y*W + xm], right  = in[y*W + xp];`,
	/* 11 */ `  float sx = (float)x / (float)W, sy = (float)y / (float)H;`,
	/* 12 */ `  float src = 0.25f*(sx + sy + (float)xm/(float)W + (float)ym/(float)H);`,
	/* 13 */ `  out[y*W + x] = told + k*(top + bottom + left + right - 4.0f*told) + 1e-6f*src;`,
	/* 14 */ `}`,
}

// Jacobi builds one §5.2 variant over a width x height grid (scale sets
// both; <= 0 selects 512).
func Jacobi(variant JacobiVariant, size int, arch gpu.Arch) (*Workload, error) {
	if size <= 0 {
		size = 512
	}
	if size%jacobiBx != 0 {
		return nil, fmt.Errorf("workloads: jacobi size %d not a multiple of %d", size, jacobiBx)
	}
	W, H := size, size

	b := kasm.NewBuilder("_Z11jacobi_stepPKfPfiif", arch.SM, "jacobi.cu")
	b.SetSource(jacobiSource)
	b.NumParams(5)

	b.Line(3)
	tx := b.TidX()
	bx := b.CtaidX()
	x := b.IMad(kasm.VR(bx), kasm.VImm(jacobiBx), kasm.VR(tx))
	b.Line(4)
	ty := b.TidY()
	by := b.CtaidY()
	y := b.IMad(kasm.VR(by), kasm.VImm(jacobiBy), kasm.VR(ty))

	b.Line(5)
	wReg := b.Param32(2)
	hReg := b.Param32(3)
	pOut := b.ISetp("GE", kasm.VR(x), kasm.VR(wReg))
	b.ExitPred(pOut, false)
	b.FreePred(pOut)
	pOut2 := b.ISetp("GE", kasm.VR(y), kasm.VR(hReg))
	b.ExitPred(pOut2, false)
	b.FreePred(pOut2)

	b.Line(6)
	xm := b.IMax(kasm.VR(b.IAdd(kasm.VR(x), kasm.VImm(-1))), kasm.VImm(0))
	wm1 := b.IAdd(kasm.VR(wReg), kasm.VImm(-1))
	xp := b.IMin(kasm.VR(b.IAdd(kasm.VR(x), kasm.VImm(1))), kasm.VR(wm1))
	b.Line(7)
	ym := b.IMax(kasm.VR(b.IAdd(kasm.VR(y), kasm.VImm(-1))), kasm.VImm(0))
	hm1 := b.IAdd(kasm.VR(hReg), kasm.VImm(-1))
	yp := b.IMin(kasm.VR(b.IAdd(kasm.VR(y), kasm.VImm(1))), kasm.VR(hm1))

	in := b.ParamPtr(0)
	out := b.ParamPtr(1)

	// Byte offset helper: (row*W + col) * 4 from the input base.
	addrOf := func(row, col kasm.VReg) kasm.VReg {
		lin := b.IMad(kasm.VR(row), kasm.VR(wReg), kasm.VR(col))
		off := b.Shl(kasm.VR(lin), 2)
		return b.IMadWide(kasm.VR(off), kasm.VImm(1), in)
	}

	var told, top, bottom, left, right kasm.VReg
	switch variant {
	case JacobiTexture:
		b.Line(8)
		told = b.Tex2D(0, kasm.VR(x), kasm.VR(y))
		b.Line(9)
		top = b.Tex2D(0, kasm.VR(x), kasm.VR(ym))
		bottom = b.Tex2D(0, kasm.VR(x), kasm.VR(yp))
		b.Line(10)
		left = b.Tex2D(0, kasm.VR(xm), kasm.VR(y))
		right = b.Tex2D(0, kasm.VR(xp), kasm.VR(y))

	case JacobiShared:
		// Stage the block's 16x16 tile; halo cells come from global.
		sh := b.AllocShared(jacobiBx * jacobiBy * 4)
		b.Line(8)
		cAddr := addrOf(y, x)
		told = b.Ldg(cAddr, 0, 4, false)
		shOff := b.IMad(kasm.VR(ty), kasm.VImm(jacobiBx*4), kasm.VR(b.Shl(kasm.VR(tx), 2)))
		b.Sts(shOff, sh, told, 4)
		b.Bar()
		// Each neighbor: from the shared tile when the neighbor falls
		// inside this block, from global memory (the halo) otherwise.
		nbr := func(line int, p sass.Pred, shDelta int64, row, col kasm.VReg) kasm.VReg {
			b.Line(line)
			v := b.MovImmF32(0)
			gAddr := addrOf(row, col)
			b.WithPred(p, false, func() { b.LdsTo(v, shOff, sh+shDelta, 4) })
			b.WithPred(p, true, func() { b.LdgTo(v, gAddr, 0, 4, false) })
			return v
		}
		b.Line(9)
		pTop := b.ISetp("GT", kasm.VR(ty), kasm.VImm(0))
		top = nbr(9, pTop, -jacobiBx*4, ym, x)
		b.FreePred(pTop)
		pBot := b.ISetp("LT", kasm.VR(ty), kasm.VImm(jacobiBy-1))
		bottom = nbr(9, pBot, jacobiBx*4, yp, x)
		b.FreePred(pBot)
		b.Line(10)
		pLeft := b.ISetp("GT", kasm.VR(tx), kasm.VImm(0))
		left = nbr(10, pLeft, -4, y, xm)
		b.FreePred(pLeft)
		pRight := b.ISetp("LT", kasm.VR(tx), kasm.VImm(jacobiBx-1))
		right = nbr(10, pRight, 4, y, xp)
		b.FreePred(pRight)

	default: // naive and restrict
		nc := variant == JacobiRestrict
		// Like nvcc's CSE, center/left/right share one base address with
		// constant +-4 byte displacements (cf. the paper's Listing 1) —
		// interior threads never clamp, and the boundary correction below
		// patches the rest.
		b.Line(8)
		cAddr := addrOf(y, x)
		told = b.Ldg(cAddr, 0, 4, nc)
		b.Line(9)
		top = b.Ldg(addrOf(ym, x), 0, 4, nc)
		bottom = b.Ldg(addrOf(yp, x), 0, 4, nc)
		b.Line(10)
		left = b.MovImmF32(0)
		right = b.MovImmF32(0)
		// Interior threads read [cAddr±4]; boundary threads read their
		// clamped neighbor through a separate address.
		pL := b.ISetp("EQ", kasm.VR(x), kasm.VImm(0))
		lAddr := addrOf(y, xm)
		b.WithPred(pL, true, func() { b.LdgTo(left, cAddr, -4, 4, nc) })
		b.WithPred(pL, false, func() { b.LdgTo(left, lAddr, 0, 4, nc) })
		b.FreePred(pL)
		pR := b.ISetp("EQ", kasm.VR(x), kasm.VR(wm1))
		rAddr := addrOf(y, xp)
		b.WithPred(pR, true, func() { b.LdgTo(right, cAddr, 4, 4, nc) })
		b.WithPred(pR, false, func() { b.LdgTo(right, rAddr, 0, 4, nc) })
		b.FreePred(pR)
	}

	// Source term: exactly six I2F conversions (§4.7: x, W, y, H, xm, ym).
	b.Line(11)
	fx := b.I2F(kasm.VR(x))
	fw := b.I2F(kasm.VR(wReg))
	rcpW := b.MufuRcp(kasm.VR(fw))
	sx := b.FMul(kasm.VR(fx), kasm.VR(rcpW))
	fy := b.I2F(kasm.VR(y))
	fh := b.I2F(kasm.VR(hReg))
	rcpH := b.MufuRcp(kasm.VR(fh))
	sy := b.FMul(kasm.VR(fy), kasm.VR(rcpH))
	b.Line(12)
	fxm := b.I2F(kasm.VR(xm))
	fym := b.I2F(kasm.VR(ym))
	sxm := b.FMul(kasm.VR(fxm), kasm.VR(rcpW))
	sym := b.FMul(kasm.VR(fym), kasm.VR(rcpH))
	srcSum := b.FAdd(kasm.VR(sx), kasm.VR(sy))
	b.FAddTo(kasm.VR(srcSum), kasm.VR(srcSum), kasm.VR(sxm))
	b.FAddTo(kasm.VR(srcSum), kasm.VR(srcSum), kasm.VR(sym))
	src := b.FMul(kasm.VR(srcSum), kasm.VImm(int64(math.Float32bits(0.25))))

	// Stencil combine.
	b.Line(13)
	kReg := b.Param32(4)
	sum := b.FAdd(kasm.VR(top), kasm.VR(bottom))
	b.FAddTo(kasm.VR(sum), kasm.VR(sum), kasm.VR(left))
	b.FAddTo(kasm.VR(sum), kasm.VR(sum), kasm.VR(right))
	b.FFmaTo(kasm.VR(sum), kasm.VR(told), kasm.VImm(int64(math.Float32bits(-4))), kasm.VR(sum))
	res := b.FFma(kasm.VR(kReg), kasm.VR(sum), kasm.VR(told))
	b.FFmaTo(kasm.VR(res), kasm.VR(src), kasm.VImm(int64(math.Float32bits(1e-6))), kasm.VR(res))
	oLin := b.IMad(kasm.VR(y), kasm.VR(wReg), kasm.VR(x))
	oOff := b.Shl(kasm.VR(oLin), 2)
	oAddr := b.IMadWide(kasm.VR(oOff), kasm.VImm(1), out)
	b.Stg(oAddr, 0, res, 4)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	k, err := codegen.Compile(prog, codegen.Options{Arch: arch})
	if err != nil {
		return nil, err
	}

	w := &Workload{
		Name:        "jacobi_" + variant.String(),
		Description: fmt.Sprintf("2D heat-transfer Jacobi step, %s variant, %dx%d grid", variant, W, H),
		Kernel:      k,
		Prepare: func(dev *sim.Device) (*Run, error) {
			inBuf, err := dev.Alloc(4 * W * H)
			if err != nil {
				return nil, err
			}
			outBuf, err := dev.Alloc(4 * W * H)
			if err != nil {
				return nil, err
			}
			data := make([]float32, W*H)
			for i := range data {
				data[i] = float32((i*31)%97) * 0.01
			}
			if err := dev.WriteF32(inBuf, data); err != nil {
				return nil, err
			}
			if variant == JacobiTexture {
				if _, err := dev.BindTexture2D(inBuf, W, H); err != nil {
					return nil, err
				}
			}
			spec := sim.LaunchSpec{
				Kernel: k,
				Grid:   sim.D2(W/jacobiBx, H/jacobiBy),
				Block:  sim.D2(jacobiBx, jacobiBy),
				Params: []uint64{
					inBuf.Addr, outBuf.Addr,
					uint64(uint32(W)), uint64(uint32(H)),
					uint64(math.Float32bits(jacobiK)),
				},
			}
			verify := func(dev *sim.Device, res *sim.Result) error {
				got, err := dev.ReadF32(outBuf, W*H)
				if err != nil {
					return err
				}
				return jacobiVerify(data, got, W, H, res)
			}
			return &Run{Spec: spec, Verify: verify}, nil
		},
	}
	return w, nil
}

// jacobiRef computes the host reference for one cell.
func jacobiRef(in []float32, W, H, x, y int) float32 {
	clampI := func(v, n int) int {
		if v < 0 {
			return 0
		}
		if v >= n {
			return n - 1
		}
		return v
	}
	xm, xp := clampI(x-1, W), clampI(x+1, W)
	ym, yp := clampI(y-1, H), clampI(y+1, H)
	told := in[y*W+x]
	top, bottom := in[ym*W+x], in[yp*W+x]
	left, right := in[y*W+xm], in[y*W+xp]
	rcp := func(f float32) float32 { return 1 / f }
	sx := float32(x) * rcp(float32(W))
	sy := float32(y) * rcp(float32(H))
	sxm := float32(xm) * rcp(float32(W))
	sym := float32(ym) * rcp(float32(H))
	src := 0.25 * (sx + sy + sxm + sym)
	sum := top + bottom + left + right
	sum = told*(-4) + sum
	res := jacobiK*sum + told
	return src*1e-6 + res
}

func jacobiVerify(in, got []float32, W, H int, res *sim.Result) error {
	gridX := W / jacobiBx
	for y := 0; y < H; y++ {
		for x := 0; x < W; x++ {
			blockLin := (y/jacobiBy)*gridX + x/jacobiBx
			if !res.BlockRan(blockLin) {
				continue
			}
			want := jacobiRef(in, W, H, x, y)
			g := got[y*W+x]
			if !almostEqual(float64(g), float64(want), 1e-4) {
				return fmt.Errorf("cell (%d,%d) = %v, want %v", x, y, g, want)
			}
		}
	}
	return nil
}

func init() {
	register("jacobi_naive", func(scale int, arch gpu.Arch) (*Workload, error) { return Jacobi(JacobiNaive, scale, arch) })
	register("jacobi_texture", func(scale int, arch gpu.Arch) (*Workload, error) { return Jacobi(JacobiTexture, scale, arch) })
	register("jacobi_restrict", func(scale int, arch gpu.Arch) (*Workload, error) { return Jacobi(JacobiRestrict, scale, arch) })
	register("jacobi_shared", func(scale int, arch gpu.Arch) (*Workload, error) { return Jacobi(JacobiShared, scale, arch) })
}
