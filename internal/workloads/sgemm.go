package workloads

import (
	"fmt"
	"math"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// SGEMM (§5.3): C = alpha*A*B + beta*C.
//
//	naive      — each thread computes one dot product straight from
//	             global memory (the paper's starting point; 25 registers)
//	shared     — 16x16 tiles of A and B staged in shared memory (the
//	             paper's first fix: 54x)
//	shared_vec — tile loads vectorized with float4 (the second fix: +8.5%,
//	             at the cost of a large register-count increase)

// SGEMMVariant selects the §5.3 kernel version.
type SGEMMVariant int

const (
	SGEMMNaive SGEMMVariant = iota
	SGEMMRestrict
	SGEMMShared
	SGEMMSharedVec
)

func (v SGEMMVariant) String() string {
	switch v {
	case SGEMMNaive:
		return "naive"
	case SGEMMRestrict:
		return "restrict"
	case SGEMMShared:
		return "shared"
	default:
		return "shared_vec"
	}
}

const sgemmTile = 16

var sgemmNaiveSource = []string{
	/* 1 */ `// naive SGEMM: C = alpha*A*B + beta*C`,
	/* 2 */ `__global__ void sgemm(int N, float alpha, const float* A, const float* B, float beta, float* C) {`,
	/* 3 */ `  int row = blockIdx.x * blockDim.x + threadIdx.x;  // thread x -> row: uncoalesced`,
	/* 4 */ `  int col = blockIdx.y * blockDim.y + threadIdx.y;`,
	/* 5 */ `  float acc = 0.0f;`,
	/* 6 */ `  for (int k = 0; k < N; k++)`,
	/* 7 */ `    acc += A[row*N + k] * B[k*N + col];`,
	/* 8 */ `  C[row*N + col] = alpha*acc + beta*C[row*N + col];`,
	/* 9 */ `}`,
}

var sgemmRestrictSource = []string{
	/* 1 */ `// naive SGEMM with read-only input pointers (the GPUscout fix)`,
	/* 2 */ `__global__ void sgemm_r(int N, float alpha, const float* __restrict__ A, const float* __restrict__ B, float beta, float* C) {`,
	/* 3 */ `  int row = blockIdx.x * blockDim.x + threadIdx.x;`,
	/* 4 */ `  int col = blockIdx.y * blockDim.y + threadIdx.y;`,
	/* 5 */ `  float acc = 0.0f;`,
	/* 6 */ `  for (int k = 0; k < N; k++)  // no-alias: nvcc unrolls x4 and batches the loads`,
	/* 7 */ `    acc += A[row*N + k] * B[k*N + col];  // LDG.E.NC via the read-only cache`,
	/* 8 */ `  C[row*N + col] = alpha*acc + beta*C[row*N + col];`,
	/* 9 */ `}`,
}

var sgemmSharedSource = []string{
	/* 1 */ `// tiled SGEMM with shared memory (16x64 K-tiles)`,
	/* 2 */ `__global__ void sgemm_shared(int N, float alpha, const float* A, const float* B, float beta, float* C) {`,
	/* 3 */ `  __shared__ float As[16][64], Bs[64][16];`,
	/* 4 */ `  int tx = threadIdx.x, ty = threadIdx.y;`,
	/* 5 */ `  int col = blockIdx.x*16 + tx, row = blockIdx.y*16 + ty;`,
	/* 6 */ `  float acc = 0.0f;`,
	/* 7 */ `  for (int kk = 0; kk < N; kk += 64) {`,
	/* 8 */ `    for (int i = 0; i < 4; i++) As[ty][tx+16*i] = A[row*N + kk + tx + 16*i];`,
	/* 9 */ `    for (int i = 0; i < 4; i++) Bs[ty+16*i][tx] = B[(kk+ty+16*i)*N + col];`,
	/* 10 */ `    __syncthreads();`,
	/* 11 */ `    for (int j = 0; j < 64; j++)`,
	/* 12 */ `      acc += As[ty][j] * Bs[j][tx];`,
	/* 13 */ `    __syncthreads();`,
	/* 14 */ `  }`,
	/* 15 */ `  C[row*N + col] = alpha*acc + beta*C[row*N + col];`,
	/* 16 */ `}`,
}

var sgemmSharedVecSource = []string{
	/* 1 */ `// tiled SGEMM (16x64 K-tiles), float4-vectorized tile loads`,
	/* 2 */ `__global__ void sgemm_shared_vec(int N, float alpha, const float* A, const float* B, float beta, float* C) {`,
	/* 3 */ `  __shared__ float As[16][64], Bs[64][16];`,
	/* 4 */ `  int tx = threadIdx.x, ty = threadIdx.y, lin = ty*16 + tx;`,
	/* 5 */ `  int col = blockIdx.x*16 + tx, row = blockIdx.y*16 + ty;`,
	/* 6 */ `  float acc = 0.0f;`,
	/* 7 */ `  for (int kk = 0; kk < N; kk += 64) {`,
	/* 8 */ `    *(float4*)&As[ty][tx*4] = *(const float4*)&A[row*N + kk + tx*4];`,
	/* 9 */ `    *(float4*)&Bs[lin/4][(lin%4)*4] = *(const float4*)&B[(kk + lin/4)*N + blockIdx.x*16 + (lin%4)*4];`,
	/* 10 */ `    __syncthreads();`,
	/* 11 */ `    for (int j = 0; j < 64; j++)`,
	/* 12 */ `      acc += As[ty][j] * Bs[j][tx];`,
	/* 13 */ `    __syncthreads();`,
	/* 14 */ `  }`,
	/* 15 */ `  C[row*N + col] = alpha*acc + beta*C[row*N + col];`,
	/* 16 */ `}`,
}

// SGEMM builds one §5.3 variant for N x N matrices (scale = N; <= 0
// selects 256).
func SGEMM(variant SGEMMVariant, n int, arch gpu.Arch) (*Workload, error) {
	if n <= 0 {
		n = 256
	}
	if n%sgemmTile != 0 {
		return nil, fmt.Errorf("workloads: sgemm N=%d not a multiple of %d", n, sgemmTile)
	}

	// The naive and restrict variants share the one-dot-product-per-thread
	// structure; restrict only changes the load path (LDG.E.NC).
	naiveStyle := variant == SGEMMNaive || variant == SGEMMRestrict

	var file string
	var source []string
	switch variant {
	case SGEMMNaive:
		file, source = "sgemm.cu", sgemmNaiveSource
	case SGEMMRestrict:
		file, source = "sgemm_restrict.cu", sgemmRestrictSource
	case SGEMMShared:
		file, source = "sgemm_shared.cu", sgemmSharedSource
	default:
		file, source = "sgemm_shared_vec.cu", sgemmSharedVecSource
	}
	b := kasm.NewBuilder("_Z5sgemm"+variant.String(), arch.SM, file)
	b.SetSource(source)
	b.NumParams(6)

	// Common prologue: col, row, pointers, acc.
	lineCol, lineRow := 3, 4
	if !naiveStyle {
		lineCol, lineRow = 5, 5
	}
	b.Line(lineCol)
	tx := b.TidX()
	bx := b.CtaidX()
	ty := b.TidY()
	by := b.CtaidY()
	var row, col kasm.VReg
	if naiveStyle {
		// The paper's starting point maps threadIdx.x to the matrix ROW:
		// lanes of a warp read A (and write C) with stride N — the
		// uncoalesced pattern whose repair is worth 54x.
		row = b.IMad(kasm.VR(bx), kasm.VImm(sgemmTile), kasm.VR(tx))
		b.Line(lineRow)
		col = b.IMad(kasm.VR(by), kasm.VImm(sgemmTile), kasm.VR(ty))
	} else {
		col = b.IMad(kasm.VR(bx), kasm.VImm(sgemmTile), kasm.VR(tx))
		b.Line(lineRow)
		row = b.IMad(kasm.VR(by), kasm.VImm(sgemmTile), kasm.VR(ty))
	}

	nReg := b.Param32(0)
	aPtr := b.ParamPtr(2)
	bPtr := b.ParamPtr(3)
	cPtr := b.ParamPtr(5)

	accLine := 5
	if !naiveStyle {
		accLine = 6
	}
	b.Line(accLine)
	acc := b.MovImmF32(0)

	switch variant {
	case SGEMMNaive, SGEMMRestrict:
		nc := variant == SGEMMRestrict
		// aAddr = A + row*N*4 ; bAddr = B + col*4 ; step 4 and 4N.
		b.Line(6)
		rowN := b.IMul(kasm.VR(row), kasm.VR(nReg))
		aOff := b.Shl(kasm.VR(rowN), 2)
		aAddr := b.IMadWide(kasm.VR(aOff), kasm.VImm(1), aPtr)
		bOff := b.Shl(kasm.VR(col), 2)
		bAddr := b.IMadWide(kasm.VR(bOff), kasm.VImm(1), bPtr)
		strideB := b.Shl(kasm.VR(nReg), 2)
		k := b.MovImm(0)
		if !nc {
			b.LabelName("kloop")
			b.Line(7)
			av := b.Ldg(aAddr, 0, 4, false)
			bv := b.Ldg(bAddr, 0, 4, false)
			b.FFmaTo(kasm.VR(acc), kasm.VR(av), kasm.VR(bv), kasm.VR(acc))
			b.Line(6)
			b.IAddTo(kasm.VRElem(aAddr, 0), kasm.VRElem(aAddr, 0), kasm.VImm(4))
			b.IAddTo(kasm.VRElem(bAddr, 0), kasm.VRElem(bAddr, 0), kasm.VR(strideB))
			b.IAddTo(kasm.VR(k), kasm.VR(k), kasm.VImm(1))
			p := b.ISetp("LT", kasm.VR(k), kasm.VR(nReg))
			b.BraIf(p, false, "kloop")
			b.FreePred(p)
		} else {
			// __restrict__ guarantees A and B cannot alias the C store, so
			// ptxas unrolls the dot-product loop by 4 and batches the
			// LDG.E.NC loads before the FFMAs — each warp now has eight
			// reads in flight instead of two, which is where the measured
			// benefit on this latency-bound kernel comes from.
			const unroll = 4
			bAddrs := []kasm.VReg{bAddr}
			for i := 1; i < unroll; i++ {
				bAddrs = append(bAddrs, b.IMadWide(kasm.VR(strideB), kasm.VImm(int64(i)), bAddr))
			}
			strideB4 := b.Shl(kasm.VR(nReg), 4) // unroll*N*4 bytes
			b.LabelName("kloop")
			b.Line(7)
			var avs, bvs [unroll]kasm.VReg
			for i := 0; i < unroll; i++ {
				avs[i] = b.Ldg(aAddr, int64(4*i), 4, true)
			}
			for i := 0; i < unroll; i++ {
				bvs[i] = b.Ldg(bAddrs[i], 0, 4, true)
			}
			for i := 0; i < unroll; i++ {
				b.FFmaTo(kasm.VR(acc), kasm.VR(avs[i]), kasm.VR(bvs[i]), kasm.VR(acc))
			}
			b.Line(6)
			b.IAddTo(kasm.VRElem(aAddr, 0), kasm.VRElem(aAddr, 0), kasm.VImm(4*unroll))
			for i := 0; i < unroll; i++ {
				b.IAddTo(kasm.VRElem(bAddrs[i], 0), kasm.VRElem(bAddrs[i], 0), kasm.VR(strideB4))
			}
			b.IAddTo(kasm.VR(k), kasm.VR(k), kasm.VImm(unroll))
			p := b.ISetp("LT", kasm.VR(k), kasm.VR(nReg))
			b.BraIf(p, false, "kloop")
			b.FreePred(p)
		}

	case SGEMMShared, SGEMMSharedVec:
		vec := variant == SGEMMSharedVec
		const tileK = 4 * sgemmTile                    // 64-deep K tiles
		asBase := b.AllocShared(sgemmTile * tileK * 4) // As[16][64]
		bsBase := b.AllocShared(tileK * sgemmTile * 4) // Bs[64][16]
		loadLineA, loadLineB := 8, 9
		innerLine, barLine := 12, 10
		if vec {
			innerLine = 12
		}

		b.Line(7)
		rowN := b.IMul(kasm.VR(row), kasm.VR(nReg))
		stride4N := b.Shl(kasm.VR(nReg), 4) // 4*N floats = 16*N bytes per 16 rows? (16*N*4 computed below)
		_ = stride4N
		strideTile := b.Shl(kasm.VR(nReg), 8)  // tileK*N*4 = 64*N*4 bytes
		strideRow16 := b.Shl(kasm.VR(nReg), 6) // 16 rows of B = 16*N*4 bytes

		var aAddr kasm.VReg    // A tile base for this thread
		var bAddrs []kasm.VReg // B tile bases (scalar: 4 row groups; vec: 1)
		var shA, shAStore, shBStore kasm.VReg
		if !vec {
			// Scalar: thread loads As[ty][tx+16i] and Bs[ty+16i][tx].
			aLin := b.IAdd(kasm.VR(rowN), kasm.VR(tx))
			aOff := b.Shl(kasm.VR(aLin), 2)
			aAddr = b.IMadWide(kasm.VR(aOff), kasm.VImm(1), aPtr)
			tyN := b.IMul(kasm.VR(ty), kasm.VR(nReg))
			bLin := b.IAdd(kasm.VR(tyN), kasm.VR(col))
			bOff := b.Shl(kasm.VR(bLin), 2)
			b0 := b.IMadWide(kasm.VR(bOff), kasm.VImm(1), bPtr)
			bAddrs = append(bAddrs, b0)
			for i := 1; i < 4; i++ {
				bAddrs = append(bAddrs, b.IMadWide(kasm.VR(strideRow16), kasm.VImm(int64(i)), b0))
			}
			shAStore = b.IMad(kasm.VR(ty), kasm.VImm(tileK*4), kasm.VR(b.Shl(kasm.VR(tx), 2)))
			shBStore = b.IMad(kasm.VR(ty), kasm.VImm(sgemmTile*4), kasm.VR(b.Shl(kasm.VR(tx), 2)))
		} else {
			// Vectorized: thread loads As[ty][tx*4..] and Bs row lin/4,
			// column group lin%4, each as one float4.
			aLin := b.IAdd(kasm.VR(rowN), kasm.VR(b.Shl(kasm.VR(tx), 2)))
			aOff := b.Shl(kasm.VR(aLin), 2)
			aAddr = b.IMadWide(kasm.VR(aOff), kasm.VImm(1), aPtr)
			lin := b.IMad(kasm.VR(ty), kasm.VImm(sgemmTile), kasm.VR(tx))
			bRow := b.Shr(kasm.VR(lin), 2)
			colGrp := b.And(kasm.VR(lin), kasm.VImm(3))
			colBase := b.IMad(kasm.VR(bx), kasm.VImm(sgemmTile), kasm.VR(b.Shl(kasm.VR(colGrp), 2)))
			bRowN := b.IMul(kasm.VR(bRow), kasm.VR(nReg))
			bLin := b.IAdd(kasm.VR(bRowN), kasm.VR(colBase))
			bOff := b.Shl(kasm.VR(bLin), 2)
			bAddrs = append(bAddrs, b.IMadWide(kasm.VR(bOff), kasm.VImm(1), bPtr))
			shAStore = b.IMad(kasm.VR(ty), kasm.VImm(tileK*4), kasm.VR(b.Shl(kasm.VR(tx), 4)))
			shBStore = b.IMad(kasm.VR(bRow), kasm.VImm(sgemmTile*4), kasm.VR(b.Shl(kasm.VR(colGrp), 4)))
		}
		shA = b.IMul(kasm.VR(ty), kasm.VImm(tileK*4)) // As row base for compute
		shBLd := b.Shl(kasm.VR(tx), 2)                // Bs[j][tx]

		kk := b.MovImm(0)
		b.LabelName("kkloop")
		if !vec {
			// Issue all global loads first (overlapping their latency),
			// then drain into the tiles.
			b.Line(loadLineA)
			var avs, bvs []kasm.VReg
			for i := 0; i < 4; i++ {
				avs = append(avs, b.Ldg(aAddr, int64(16*4*i), 4, false))
			}
			b.Line(loadLineB)
			for i := 0; i < 4; i++ {
				bvs = append(bvs, b.Ldg(bAddrs[i], 0, 4, false))
			}
			b.Line(loadLineA)
			for i := 0; i < 4; i++ {
				b.Sts(shAStore, asBase+int64(16*4*i), avs[i], 4)
			}
			b.Line(loadLineB)
			for i := 0; i < 4; i++ {
				b.Sts(shBStore, bsBase+int64(16*sgemmTile*4*i), bvs[i], 4)
			}
		} else {
			b.Line(8)
			aq := b.Ldg(aAddr, 0, 16, false)
			b.Line(9)
			bq := b.Ldg(bAddrs[0], 0, 16, false)
			b.Line(8)
			b.Sts(shAStore, asBase, aq, 16)
			b.Line(9)
			b.Sts(shBStore, bsBase, bq, 16)
		}
		b.Line(barLine)
		b.Bar()
		b.Line(innerLine)
		for j := 0; j < tileK; j++ {
			av := b.Lds(shA, asBase+int64(j*4), 4)
			bvv := b.Lds(shBLd, bsBase+int64(j*sgemmTile*4), 4)
			b.FFmaTo(kasm.VR(acc), kasm.VR(av), kasm.VR(bvv), kasm.VR(acc))
		}
		b.Line(7)
		b.IAddTo(kasm.VRElem(aAddr, 0), kasm.VRElem(aAddr, 0), kasm.VImm(tileK*4))
		for _, ba := range bAddrs {
			b.IAddTo(kasm.VRElem(ba, 0), kasm.VRElem(ba, 0), kasm.VR(strideTile))
		}
		b.Line(barLine + 3)
		b.Bar()
		b.IAddTo(kasm.VR(kk), kasm.VR(kk), kasm.VImm(tileK))
		p := b.ISetp("LT", kasm.VR(kk), kasm.VR(nReg))
		b.BraIf(p, false, "kkloop")
		b.FreePred(p)
	}

	// Epilogue: C[row*N+col] = alpha*acc + beta*C[...].
	epiLine := 8
	if variant == SGEMMShared {
		epiLine = 15
	} else if variant == SGEMMSharedVec {
		epiLine = 17
	}
	b.Line(epiLine)
	alpha := b.Param32(1)
	beta := b.Param32(4)
	cLin := b.IMad(kasm.VR(row), kasm.VR(nReg), kasm.VR(col))
	cOff := b.Shl(kasm.VR(cLin), 2)
	cAddr := b.IMadWide(kasm.VR(cOff), kasm.VImm(1), cPtr)
	cOld := b.Ldg(cAddr, 0, 4, false)
	resv := b.FMul(kasm.VR(alpha), kasm.VR(acc))
	b.FFmaTo(kasm.VR(resv), kasm.VR(beta), kasm.VR(cOld), kasm.VR(resv))
	b.Stg(cAddr, 0, resv, 4)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	k, err := codegen.Compile(prog, codegen.Options{Arch: arch})
	if err != nil {
		return nil, err
	}

	const alphaV, betaV = float32(1.0), float32(0.5)
	w := &Workload{
		Name:        "sgemm_" + variant.String(),
		Description: fmt.Sprintf("SGEMM %s, %dx%d matrices", variant, n, n),
		Kernel:      k,
		Prepare: func(dev *sim.Device) (*Run, error) {
			bytes := 4 * n * n
			aBuf, err := dev.Alloc(bytes)
			if err != nil {
				return nil, err
			}
			bBuf, err := dev.Alloc(bytes)
			if err != nil {
				return nil, err
			}
			cBuf, err := dev.Alloc(bytes)
			if err != nil {
				return nil, err
			}
			aH := make([]float32, n*n)
			bH := make([]float32, n*n)
			cH := make([]float32, n*n)
			for i := range aH {
				aH[i] = float32((i*7)%23) * 0.05
				bH[i] = float32((i*13)%19) * 0.03
				cH[i] = float32(i%11) * 0.1
			}
			if err := dev.WriteF32(aBuf, aH); err != nil {
				return nil, err
			}
			if err := dev.WriteF32(bBuf, bH); err != nil {
				return nil, err
			}
			if err := dev.WriteF32(cBuf, cH); err != nil {
				return nil, err
			}
			spec := sim.LaunchSpec{
				Kernel: k,
				Grid:   sim.D2(n/sgemmTile, n/sgemmTile),
				Block:  sim.D2(sgemmTile, sgemmTile),
				Params: []uint64{
					uint64(uint32(n)),
					uint64(math.Float32bits(alphaV)),
					aBuf.Addr, bBuf.Addr,
					uint64(math.Float32bits(betaV)),
					cBuf.Addr,
				},
			}
			verify := func(dev *sim.Device, res *sim.Result) error {
				got, err := dev.ReadF32(cBuf, n*n)
				if err != nil {
					return err
				}
				return sgemmVerify(aH, bH, cH, got, n, alphaV, betaV, naiveStyle, res)
			}
			return &Run{Spec: spec, Verify: verify}, nil
		},
	}
	return w, nil
}

// sgemmVerify checks simulated blocks (capped for large N).
func sgemmVerify(aH, bH, cH, got []float32, n int, alpha, beta float32, naive bool, res *sim.Result) error {
	gridX := n / sgemmTile
	checked := 0
	for blin := 0; blin < gridX*gridX && checked < 4; blin++ {
		if !res.BlockRan(blin) {
			continue
		}
		checked++
		bx, by := blin%gridX, blin/gridX
		for ty := 0; ty < sgemmTile; ty++ {
			for tx := 0; tx < sgemmTile; tx++ {
				row, col := by*sgemmTile+ty, bx*sgemmTile+tx
				if naive {
					row, col = bx*sgemmTile+tx, by*sgemmTile+ty
				}
				var acc float32
				for k := 0; k < n; k++ {
					acc += aH[row*n+k] * bH[k*n+col]
				}
				want := alpha*acc + beta*cH[row*n+col]
				g := got[row*n+col]
				if !almostEqual(float64(g), float64(want), 1e-3) {
					return fmt.Errorf("C[%d,%d] = %v, want %v", row, col, g, want)
				}
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("no simulated block to verify")
	}
	return nil
}

func init() {
	register("sgemm_naive", func(scale int, arch gpu.Arch) (*Workload, error) { return SGEMM(SGEMMNaive, scale, arch) })
	register("sgemm_restrict", func(scale int, arch gpu.Arch) (*Workload, error) { return SGEMM(SGEMMRestrict, scale, arch) })
	register("sgemm_shared", func(scale int, arch gpu.Arch) (*Workload, error) { return SGEMM(SGEMMShared, scale, arch) })
	register("sgemm_shared_vec", func(scale int, arch gpu.Arch) (*Workload, error) { return SGEMM(SGEMMSharedVec, scale, arch) })
}

// Compile-time checks that variants stay registered in sass terms.
var _ = sass.OpLDS
