package workloads

import (
	"fmt"
	"math"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sim"
)

// Mixbench (§5.1): the mixed-operational-intensity benchmark_func kernel.
// Every compute iteration re-reads GRANULARITY elements per thread from
// global memory and applies a multiply-add. The naive variant issues
// GRANULARITY scalar 32-bit (or 64-bit for double) loads from adjacent
// addresses — exactly the §4.1 pattern GPUscout flags — and the "vec"
// variant applies the paper's fix: 128-bit vectorized loads
// (reinterpret_cast<float4*>, Listing 2).

// MixType selects the mixbench datatype variant.
type MixType int

const (
	MixSP  MixType = iota // single-precision float
	MixDP                 // double precision
	MixInt                // 32-bit integer
)

func (t MixType) String() string {
	switch t {
	case MixSP:
		return "sp"
	case MixDP:
		return "dp"
	default:
		return "int"
	}
}

const (
	mixGranularity = 8   // elements per thread, divisible by 4 (§5.1)
	mixBlock       = 256 // threads per block
	mixBlocks      = 640 // grid blocks (8 per SM: a fully occupied V100)
)

var mixbenchSource = []string{
	/* 1 */ `#define GRANULARITY 8`,
	/* 2 */ `__global__ void benchmark_func(T seed, T* g_data) {`,
	/* 3 */ `  const int gid = blockIdx.x * blockDim.x + threadIdx.x;`,
	/* 4 */ `  T tmps[GRANULARITY];`,
	/* 5 */ `  for (int i = 0; i < compute_iterations; i++) {`,
	/* 6 */ `    for (int j = 0; j < GRANULARITY; j++) {`,
	/* 7 */ `      tmps[j] = g_data[gid * GRANULARITY + j];`,
	/* 8 */ `      tmps[j] = mad(tmps[j], tmps[j], seed);`,
	/* 9 */ `    }`,
	/* 10 */ `  }`,
	/* 11 */ `  T sum = (T)0;`,
	/* 12 */ `  for (int j = 0; j < GRANULARITY; j++) sum += tmps[j];`,
	/* 13 */ `  g_data[gid * GRANULARITY] = sum;`,
	/* 14 */ `}`,
}

// Mixbench builds one variant. computeIterations <= 0 selects the paper's
// 96. vectorized applies the Listing-2 float4/double4/int4 modification.
func Mixbench(t MixType, vectorized bool, computeIterations int, arch gpu.Arch) (*Workload, error) {
	if computeIterations <= 0 {
		computeIterations = 96
	}
	elem := 4
	if t == MixDP {
		elem = 8
	}
	variant := "naive"
	if vectorized {
		variant = "vec4"
	}
	name := fmt.Sprintf("_Z14benchmark_func%s%sPS_", map[MixType]string{MixSP: "f", MixDP: "d", MixInt: "i"}[t], "")
	b := kasm.NewBuilder(name, arch.SM, "mixbench.cu")
	b.SetSource(mixbenchSource)
	b.NumParams(2)

	// gid = blockIdx.x * blockDim.x + threadIdx.x
	b.Line(3)
	tid := b.TidX()
	ctaid := b.CtaidX()
	ntid := b.NTidX()
	gid := b.IMad(kasm.VR(ctaid), kasm.VR(ntid), kasm.VR(tid))
	gdata := b.ParamPtr(1)
	off := b.IMul(kasm.VR(gid), kasm.VImm(int64(mixGranularity*elem)))
	base := b.IMadWide(kasm.VR(off), kasm.VImm(1), gdata)

	// seed in a register (pair for DP).
	var seed kasm.VReg
	if t == MixDP {
		seed = b.ParamF64(0)
	} else {
		seed = b.Param32(0)
	}

	// Loop header.
	b.Line(5)
	i := b.MovImm(0)

	elemsPerVec := 16 / elem
	numVecs := mixGranularity / elemsPerVec
	var tmps []kasm.VReg // naive: one vreg per element; vec: quad vregs

	b.LabelName("iter_loop")
	if !vectorized {
		tmps = tmps[:0]
		for j := 0; j < mixGranularity; j++ {
			b.Line(7)
			v := b.Ldg(base, int64(j*elem), elem, false)
			b.Line(8)
			tmps = append(tmps, mixMad(b, t, v, seed))
		}
	} else {
		tmps = tmps[:0]
		for v := 0; v < numVecs; v++ {
			b.Line(7)
			q := b.Ldg(base, int64(v*16), 16, false)
			b.Line(8)
			mixMadVec(b, t, q, seed)
			tmps = append(tmps, q)
		}
	}
	b.Line(5)
	b.IAddTo(kasm.VR(i), kasm.VR(i), kasm.VImm(1))
	p := b.ISetp("LT", kasm.VR(i), kasm.VImm(int64(computeIterations)))
	b.BraIf(p, false, "iter_loop")
	b.FreePred(p)

	// Reduce and store.
	b.Line(12)
	sum := mixSum(b, t, vectorized, tmps)
	b.Line(13)
	b.Stg(base, 0, sum, elem)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	k, err := codegen.Compile(prog, codegen.Options{Arch: arch})
	if err != nil {
		return nil, err
	}

	threads := mixBlock * mixBlocks
	w := &Workload{
		Name:        fmt.Sprintf("mixbench_%s_%s", t, variant),
		Description: fmt.Sprintf("mixbench %s MAD kernel (%s loads, %d iterations)", t, variant, computeIterations),
		Kernel:      k,
		Prepare: func(dev *sim.Device) (*Run, error) {
			buf, err := dev.Alloc(threads * mixGranularity * elem)
			if err != nil {
				return nil, err
			}
			var params []uint64
			verify := func(dev *sim.Device, res *sim.Result) error { return nil }
			switch t {
			case MixDP:
				seedVal := 0.01
				data := make([]float64, threads*mixGranularity)
				for idx := range data {
					data[idx] = float64(idx%17) * 0.125
				}
				if err := dev.WriteF64(buf, data); err != nil {
					return nil, err
				}
				params = []uint64{math.Float64bits(seedVal), buf.Addr}
				verify = func(dev *sim.Device, res *sim.Result) error {
					got, err := dev.ReadF64(buf, threads*mixGranularity)
					if err != nil {
						return err
					}
					return mixVerifyF64(data, got, seedVal, threads, res)
				}
			case MixInt:
				seedVal := int32(3)
				data := make([]int32, threads*mixGranularity)
				for idx := range data {
					data[idx] = int32(idx % 13)
				}
				if err := dev.WriteI32(buf, data); err != nil {
					return nil, err
				}
				params = []uint64{uint64(uint32(seedVal)), buf.Addr}
				verify = func(dev *sim.Device, res *sim.Result) error {
					got, err := dev.ReadI32(buf, threads*mixGranularity)
					if err != nil {
						return err
					}
					return mixVerifyI32(data, got, seedVal, threads, res)
				}
			default:
				seedVal := float32(0.01)
				data := make([]float32, threads*mixGranularity)
				for idx := range data {
					data[idx] = float32(idx%17) * 0.125
				}
				if err := dev.WriteF32(buf, data); err != nil {
					return nil, err
				}
				params = []uint64{uint64(math.Float32bits(seedVal)), buf.Addr}
				verify = func(dev *sim.Device, res *sim.Result) error {
					got, err := dev.ReadF32(buf, threads*mixGranularity)
					if err != nil {
						return err
					}
					return mixVerifyF32(data, got, seedVal, threads, res)
				}
			}
			return &Run{
				Spec: sim.LaunchSpec{
					Kernel: k,
					Grid:   sim.D1(mixBlocks),
					Block:  sim.D1(mixBlock),
					Params: params,
				},
				Verify: verify,
			}, nil
		},
	}
	return w, nil
}

// mixMad emits tmps = mad(v, v, seed) for a scalar element.
func mixMad(b *kasm.Builder, t MixType, v, seed kasm.VReg) kasm.VReg {
	switch t {
	case MixDP:
		return b.DFma(kasm.VR(v), kasm.VR(v), kasm.VR(seed))
	case MixInt:
		return b.IMad(kasm.VR(v), kasm.VR(v), kasm.VR(seed))
	default:
		return b.FFma(kasm.VR(v), kasm.VR(v), kasm.VR(seed))
	}
}

// mixMadVec applies the mad element-wise, in place, to a 128-bit vector.
func mixMadVec(b *kasm.Builder, t MixType, q, seed kasm.VReg) {
	switch t {
	case MixDP:
		for e := 0; e < 4; e += 2 {
			d := kasm.VRElem(q, e)
			b.DFmaTo(d, d, d, kasm.VR(seed))
		}
	case MixInt:
		for e := 0; e < 4; e++ {
			d := kasm.VRElem(q, e)
			b.IMadTo(d, d, d, kasm.VR(seed))
		}
	default:
		for e := 0; e < 4; e++ {
			d := kasm.VRElem(q, e)
			b.FFmaTo(d, d, d, kasm.VR(seed))
		}
	}
}

// mixSum reduces the element registers to one scalar (pair for DP).
func mixSum(b *kasm.Builder, t MixType, vectorized bool, tmps []kasm.VReg) kasm.VReg {
	type elemRef = kasm.VOperand
	var elems []elemRef
	if vectorized {
		step := 1
		if t == MixDP {
			step = 2
		}
		for _, q := range tmps {
			for e := 0; e < 4; e += step {
				elems = append(elems, kasm.VRElem(q, e))
			}
		}
	} else {
		for _, v := range tmps {
			elems = append(elems, kasm.VR(v))
		}
	}
	switch t {
	case MixDP:
		sum := b.DAdd(elems[0], elems[1])
		for _, e := range elems[2:] {
			b.DAddTo(kasm.VR(sum), kasm.VR(sum), e)
		}
		return sum
	case MixInt:
		sum := b.IAdd(elems[0], elems[1])
		for _, e := range elems[2:] {
			b.IAddTo(kasm.VR(sum), kasm.VR(sum), e)
		}
		return sum
	default:
		sum := b.FAdd(elems[0], elems[1])
		for _, e := range elems[2:] {
			b.FAddTo(kasm.VR(sum), kasm.VR(sum), e)
		}
		return sum
	}
}

func mixVerifyF32(orig, got []float32, seed float32, threads int, res *sim.Result) error {
	for th := 0; th < threads; th++ {
		if !res.BlockRan(th / mixBlock) {
			continue
		}
		base := th * mixGranularity
		var want float32
		for j := 0; j < mixGranularity; j++ {
			v := orig[base+j]
			want += v*v + seed
		}
		if g := got[base]; !almostEqual(float64(g), float64(want), 1e-5) {
			return fmt.Errorf("thread %d: sum = %v, want %v", th, g, want)
		}
	}
	return nil
}

func mixVerifyF64(orig, got []float64, seed float64, threads int, res *sim.Result) error {
	for th := 0; th < threads; th++ {
		if !res.BlockRan(th / mixBlock) {
			continue
		}
		base := th * mixGranularity
		var want float64
		for j := 0; j < mixGranularity; j++ {
			v := orig[base+j]
			want += v*v + seed
		}
		if g := got[base]; !almostEqual(g, want, 1e-12) {
			return fmt.Errorf("thread %d: sum = %v, want %v", th, g, want)
		}
	}
	return nil
}

func mixVerifyI32(orig, got []int32, seed int32, threads int, res *sim.Result) error {
	for th := 0; th < threads; th++ {
		if !res.BlockRan(th / mixBlock) {
			continue
		}
		base := th * mixGranularity
		var want int32
		for j := 0; j < mixGranularity; j++ {
			v := orig[base+j]
			want += v*v + seed
		}
		if g := got[base]; g != want {
			return fmt.Errorf("thread %d: sum = %d, want %d", th, g, want)
		}
	}
	return nil
}

func init() {
	register("mixbench_sp_naive", func(scale int, arch gpu.Arch) (*Workload, error) { return Mixbench(MixSP, false, scale, arch) })
	register("mixbench_sp_vec4", func(scale int, arch gpu.Arch) (*Workload, error) { return Mixbench(MixSP, true, scale, arch) })
	register("mixbench_dp_naive", func(scale int, arch gpu.Arch) (*Workload, error) { return Mixbench(MixDP, false, scale, arch) })
	register("mixbench_dp_vec4", func(scale int, arch gpu.Arch) (*Workload, error) { return Mixbench(MixDP, true, scale, arch) })
	register("mixbench_int_naive", func(scale int, arch gpu.Arch) (*Workload, error) { return Mixbench(MixInt, false, scale, arch) })
	register("mixbench_int_vec4", func(scale int, arch gpu.Arch) (*Workload, error) { return Mixbench(MixInt, true, scale, arch) })
}
