package workloads

import (
	"reflect"
	"testing"

	"gpuscout/internal/sass"
)

// TestCanonicalSASSRoundTrip asserts ParseSASS(PrintSASS(k)) is lossless
// for every registered workload kernel. The gpuscoutd report cache keys
// on the canonical SASS text (internal/service.CacheKey), so two kernels
// must produce the same text iff they analyze identically: the printed
// form has to capture the full instruction stream, control info, resource
// header, and line table, and re-printing the parsed kernel must be a
// fixed point.
func TestCanonicalSASSRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			w, err := Build(name, 0)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			k := w.Kernel
			text := sass.Print(k)

			k2, err := sass.Parse(text)
			if err != nil {
				t.Fatalf("Parse(Print(k)): %v", err)
			}

			// The text form is a fixed point of Print∘Parse.
			if text2 := sass.Print(k2); text2 != text {
				t.Fatalf("Print(Parse(Print(k))) differs:\n--- first\n%.400s\n--- second\n%.400s", text, text2)
			}

			// Header resources survive (they are part of the .kernel line).
			if k2.Name != k.Name || k2.Arch != k.Arch {
				t.Errorf("identity lost: %s/%s vs %s/%s", k2.Name, k2.Arch, k.Name, k.Arch)
			}
			if k2.NumRegs != k.NumRegs || k2.SharedBytes != k.SharedBytes ||
				k2.LocalBytes != k.LocalBytes || k2.ConstBytes != k.ConstBytes {
				t.Errorf("resources lost: regs %d→%d shared %d→%d local %d→%d const %d→%d",
					k.NumRegs, k2.NumRegs, k.SharedBytes, k2.SharedBytes,
					k.LocalBytes, k2.LocalBytes, k.ConstBytes, k2.ConstBytes)
			}

			// Every instruction survives: opcode, operands, predicate,
			// control info, and source-line attribution.
			if len(k2.Insts) != len(k.Insts) {
				t.Fatalf("instruction count %d → %d", len(k.Insts), len(k2.Insts))
			}
			for i := range k.Insts {
				a, b := &k.Insts[i], &k2.Insts[i]
				if a.String() != b.String() {
					t.Errorf("inst %d text: %q → %q", i, a.String(), b.String())
				}
				if a.Ctrl != b.Ctrl {
					t.Errorf("inst %d ctrl: %+v → %+v", i, a.Ctrl, b.Ctrl)
				}
				if a.Line != b.Line {
					t.Errorf("inst %d line: %d → %d", i, a.Line, b.Line)
				}
				if a.Op != b.Op || a.Pred != b.Pred || a.PredNeg != b.PredNeg {
					t.Errorf("inst %d op/pred mismatch", i)
				}
				if !reflect.DeepEqual(a.Mods, b.Mods) {
					t.Errorf("inst %d mods: %v → %v", i, a.Mods, b.Mods)
				}
			}

			// The parsed kernel is still valid and analyzable.
			if err := k2.Validate(); err != nil {
				t.Errorf("reparsed kernel invalid: %v", err)
			}
		})
	}
}
