package workloads

import (
	"testing"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

func TestSpillPressureWorkload(t *testing.T) {
	w, res := runWorkload(t, "spill_pressure", 8, sim.Config{SampleSMs: 2})
	ops := w.Kernel.CountOpcodes()
	if ops[sass.OpSTL] == 0 || ops[sass.OpLDL] == 0 {
		t.Fatalf("spill workload has no spill code: %d STL, %d LDL", ops[sass.OpSTL], ops[sass.OpLDL])
	}
	if w.Kernel.NumRegs > spillBudget {
		t.Errorf("NumRegs = %d exceeds budget %d", w.Kernel.NumRegs, spillBudget)
	}
	if w.Kernel.LocalBytes == 0 {
		t.Error("LocalBytes = 0")
	}
	if res.Counters.LocalLdSectors == 0 || res.Counters.LocalStSectors == 0 {
		t.Error("no local memory traffic at runtime")
	}
	// §4.2: spills inside the loop drive LG pressure.
	if res.Counters.StallCycles[sim.StallLGThrottle] <= 0 {
		t.Error("no lg_throttle stalls despite in-loop spills")
	}
}

func TestHistogramVariantsCorrect(t *testing.T) {
	_, rg := runWorkload(t, "histogram_global", 8, sim.Config{SampleSMs: 2})
	if rg.Counters.GlobalAtomics == 0 {
		t.Error("global histogram shows no global atomics")
	}
	_, rs := runWorkload(t, "histogram_shared", 8, sim.Config{SampleSMs: 2})
	if rs.Counters.SharedAtomics == 0 {
		t.Error("shared histogram shows no shared atomics")
	}
	// The optimized variant trades device-wide serialization for
	// block-level serialization: far fewer global atomics.
	if rs.Counters.GlobalAtomics >= rg.Counters.GlobalAtomics {
		t.Errorf("shared variant global atomics %d not below global variant %d",
			rs.Counters.GlobalAtomics, rg.Counters.GlobalAtomics)
	}
}

func TestHistogramSharedFaster(t *testing.T) {
	// §4.4: shared atomics reduce the global-serialization penalty.
	_, rg := runWorkload(t, "histogram_global", 16, sim.Config{SampleSMs: 1})
	_, rs := runWorkload(t, "histogram_shared", 16, sim.Config{SampleSMs: 1})
	speedup := rg.Cycles / rs.Cycles
	t.Logf("shared-atomics speedup %.2fx (global %.0f, shared %.0f)", speedup, rg.Cycles, rs.Cycles)
	if speedup < 1.1 {
		t.Errorf("shared atomics not faster: %.2fx", speedup)
	}
}
