package workloads

import (
	"fmt"

	"gpuscout/internal/codegen"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sim"
)

// Histogram exercises the §4.4 atomics analysis: each thread walks its
// slice of the input and bumps a counter bin per element.
//
//	global — atomic adds straight to the global bins inside the loop:
//	         the kernel-wide serialization GPUscout warns about
//	shared — per-block bins in shared memory (block-level serialization),
//	         merged into the global bins once at the end
const (
	histBins   = 64
	histPerThr = 16 // elements per thread
	histBlock  = 256
	histBlocks = 640
)

var histGlobalSource = []string{
	/* 1 */ `// histogram with global atomics`,
	/* 2 */ `__global__ void hist(const int* in, float* bins, int perThread) {`,
	/* 3 */ `  int gid = blockIdx.x * blockDim.x + threadIdx.x;`,
	/* 4 */ `  for (int i = 0; i < perThread; i++) {`,
	/* 5 */ `    int v = in[i*gridSize + gid];  // coalesced`,
	/* 6 */ `    atomicAdd(&bins[v & 63], 1.0f);`,
	/* 7 */ `  }`,
	/* 8 */ `}`,
}

var histSharedSource = []string{
	/* 1 */ `// histogram with shared-memory atomics`,
	/* 2 */ `__global__ void hist_s(const int* in, float* bins, int perThread) {`,
	/* 3 */ `  __shared__ float sbins[64];`,
	/* 4 */ `  int tid = threadIdx.x, gid = blockIdx.x * blockDim.x + tid;`,
	/* 5 */ `  if (tid < 64) sbins[tid] = 0.0f;`,
	/* 6 */ `  __syncthreads();`,
	/* 7 */ `  for (int i = 0; i < perThread; i++) {`,
	/* 8 */ `    int v = in[i*gridSize + gid];  // coalesced`,
	/* 9 */ `    atomicAdd(&sbins[v & 63], 1.0f);`,
	/* 10 */ `  }`,
	/* 11 */ `  __syncthreads();`,
	/* 12 */ `  if (tid < 64) atomicAdd(&bins[tid], sbins[tid]);`,
	/* 13 */ `}`,
}

// Histogram builds the workload; shared selects the optimized variant.
// scale is elements per thread (<= 0 selects 16).
func Histogram(shared bool, scale int, arch gpu.Arch) (*Workload, error) {
	perThr := scale
	if perThr <= 0 {
		perThr = histPerThr
	}
	name, file, source := "_Z4histPKiPfi", "hist.cu", histGlobalSource
	if shared {
		name, file, source = "_Z6hist_sPKiPfi", "hist_s.cu", histSharedSource
	}
	b := kasm.NewBuilder(name, arch.SM, file)
	b.SetSource(source)
	b.NumParams(3)

	lineGid := 3
	if shared {
		lineGid = 4
	}
	b.Line(lineGid)
	tid := b.TidX()
	ctaid := b.CtaidX()
	ntid := b.NTidX()
	gid := b.IMad(kasm.VR(ctaid), kasm.VR(ntid), kasm.VR(tid))
	in := b.ParamPtr(0)
	bins := b.ParamPtr(1)
	one := b.MovImmF32(1)

	var sbins int64
	if shared {
		sbins = b.AllocShared(histBins * 4)
		b.Line(5)
		zero := b.MovImmF32(0)
		shOff := b.Shl(kasm.VR(tid), 2)
		pInit := b.ISetp("LT", kasm.VR(tid), kasm.VImm(histBins))
		b.WithPred(pInit, false, func() { b.Sts(shOff, sbins, zero, 4) })
		b.Line(6)
		b.Bar()
		b.FreePred(pInit)
	}

	b.Line(4)
	off := b.Shl(kasm.VR(gid), 2)
	addr := b.IMadWide(kasm.VR(off), kasm.VImm(1), in)
	gridSize := b.IMul(kasm.VR(ntid), kasm.VR(b.NCtaidX()))
	stride := b.Shl(kasm.VR(gridSize), 2)
	i := b.MovImm(0)
	loopLine, atomLine := 5, 6
	if shared {
		loopLine, atomLine = 8, 9
	}
	b.LabelName("elems")
	b.Line(loopLine)
	v := b.Ldg(addr, 0, 4, false)
	bin := b.And(kasm.VR(v), kasm.VImm(histBins-1))
	binOff := b.Shl(kasm.VR(bin), 2)
	b.Line(atomLine)
	if shared {
		shAddr := b.IAdd(kasm.VR(binOff), kasm.VImm(0))
		b.AtomsAddF32(shAddr, sbins, one)
	} else {
		gAddr := b.IMadWide(kasm.VR(binOff), kasm.VImm(1), bins)
		b.RedAddF32(gAddr, 0, one)
	}
	b.Line(loopLine - 1)
	b.IAddTo(kasm.VRElem(addr, 0), kasm.VRElem(addr, 0), kasm.VR(stride))
	b.IAddTo(kasm.VR(i), kasm.VR(i), kasm.VImm(1))
	p := b.ISetp("LT", kasm.VR(i), kasm.VImm(int64(perThr)))
	b.BraIf(p, false, "elems")
	b.FreePred(p)

	if shared {
		b.Line(11)
		b.Bar()
		b.Line(12)
		shOff := b.Shl(kasm.VR(tid), 2)
		pm := b.ISetp("LT", kasm.VR(tid), kasm.VImm(histBins))
		sv := b.MovImmF32(0)
		b.WithPred(pm, false, func() { b.LdsTo(sv, shOff, sbins, 4) })
		gAddr := b.IMadWide(kasm.VR(shOff), kasm.VImm(1), bins)
		b.WithPred(pm, false, func() { b.RedAddF32(gAddr, 0, sv) })
		b.FreePred(pm)
	}
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	k, err := codegen.Compile(prog, codegen.Options{Arch: arch})
	if err != nil {
		return nil, err
	}

	threads := histBlock * histBlocks
	variant := "global"
	if shared {
		variant = "shared"
	}
	w := &Workload{
		Name:        "histogram_" + variant,
		Description: fmt.Sprintf("64-bin histogram with %s atomics, %d elements/thread", variant, perThr),
		Kernel:      k,
		Prepare: func(dev *sim.Device) (*Run, error) {
			inBuf, err := dev.Alloc(4 * threads * perThr)
			if err != nil {
				return nil, err
			}
			binBuf, err := dev.Alloc(4 * histBins)
			if err != nil {
				return nil, err
			}
			data := make([]int32, threads*perThr)
			for idx := range data {
				data[idx] = int32((idx*7 + idx/3) % 251)
			}
			if err := dev.WriteI32(inBuf, data); err != nil {
				return nil, err
			}
			if err := dev.WriteF32(binBuf, make([]float32, histBins)); err != nil {
				return nil, err
			}
			spec := sim.LaunchSpec{
				Kernel: k,
				Grid:   sim.D1(histBlocks),
				Block:  sim.D1(histBlock),
				Params: []uint64{inBuf.Addr, binBuf.Addr, uint64(uint32(perThr))},
			}
			verify := func(dev *sim.Device, res *sim.Result) error {
				got, err := dev.ReadF32(binBuf, histBins)
				if err != nil {
					return err
				}
				want := make([]float32, histBins)
				for th := 0; th < threads; th++ {
					if !res.BlockRan(th / histBlock) {
						continue
					}
					for e := 0; e < perThr; e++ {
						want[data[e*threads+th]&(histBins-1)]++
					}
				}
				for bn := range want {
					if got[bn] != want[bn] {
						return fmt.Errorf("bin %d = %v, want %v", bn, got[bn], want[bn])
					}
				}
				return nil
			}
			return &Run{Spec: spec, Verify: verify}, nil
		},
	}
	return w, nil
}

func init() {
	register("histogram_global", func(scale int, arch gpu.Arch) (*Workload, error) { return Histogram(false, scale, arch) })
	register("histogram_shared", func(scale int, arch gpu.Arch) (*Workload, error) { return Histogram(true, scale, arch) })
}
