// Package workloads provides the paper's case-study kernels (§5) —
// Mixbench, the 2D Jacobi heat-transfer stencil, and SGEMM — in their
// naive and optimized variants, plus auxiliary kernels exercising the
// remaining detectors (register spilling for Fig. 2, atomics for §4.4).
//
// Each kernel is written against the kasm builder to mirror what nvcc
// emits for the corresponding CUDA source (which is embedded, so reports
// can quote source lines), then compiled by internal/codegen.
package workloads

import (
	"context"
	"fmt"
	"sort"

	"gpuscout/internal/gpu"
	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// Run is a prepared launch: the spec to execute plus a correctness check
// to run afterwards.
type Run struct {
	Spec sim.LaunchSpec
	// Verify checks the device-side results. It receives the simulation
	// result so it can skip blocks that were not simulated under SM
	// sampling (see sim.Result.BlockRan).
	Verify func(dev *sim.Device, res *sim.Result) error
}

// Workload is a compiled kernel together with its launch preparation.
type Workload struct {
	// Name identifies the workload variant, e.g. "sgemm_shared".
	Name string
	// Description is a one-line human summary.
	Description string
	// Kernel is the compiled SASS.
	Kernel *sass.Kernel
	// Prepare allocates and initializes device buffers and returns the
	// launch.
	Prepare func(dev *sim.Device) (*Run, error)
}

// Factory builds a workload at a given problem scale (the meaning of
// "scale" is workload-specific; see each constructor) for a target
// architecture. The kernels themselves are written against the
// arch-neutral kasm IR; the arch drives codegen's per-target lowering.
type Factory func(scale int, arch gpu.Arch) (*Workload, error)

var (
	factories = map[string]Factory{}
	// names holds the registered names in sorted order, maintained at
	// registration time. Callers that iterate the registry (the golden
	// suite, the CLI's workload listing, the daemon) must never see Go's
	// randomized map order.
	names []string
)

func register(name string, f Factory) {
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("workloads: duplicate %q", name))
	}
	factories[name] = f
	i := sort.SearchStrings(names, name)
	names = append(names, "")
	copy(names[i+1:], names[i:])
	names[i] = name
}

// Names lists registered workload names, sorted. The returned slice is a
// copy; callers may mutate it freely.
func Names() []string {
	out := make([]string, len(names))
	copy(out, names)
	return out
}

// Build constructs a registered workload at the given scale (0 selects
// the workload's default scale) for the default Volta-class target.
func Build(name string, scale int) (*Workload, error) {
	return BuildArch(name, scale, gpu.V100())
}

// BuildArch constructs a registered workload compiled for the given
// architecture: the same arch-neutral kernel source, lowered by the
// arch's codegen backend (e.g. LDG+STS fused into cp.async-style LDGSTS
// on sm_80).
func BuildArch(name string, scale int, arch gpu.Arch) (*Workload, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	if arch.Name == "" {
		arch = gpu.V100()
	}
	return f(scale, arch)
}

// Execute prepares and launches the workload on a fresh device, verifies
// the result, and returns the simulation result.
func Execute(w *Workload, dev *sim.Device, cfg sim.Config) (*sim.Result, error) {
	return ExecuteContext(context.Background(), w, dev, cfg)
}

// ExecuteContext is Execute with cancellation: the simulated launch polls
// ctx and aborts promptly when it is cancelled.
func ExecuteContext(ctx context.Context, w *Workload, dev *sim.Device, cfg sim.Config) (*sim.Result, error) {
	run, err := w.Prepare(dev)
	if err != nil {
		return nil, fmt.Errorf("workloads: prepare %s: %w", w.Name, err)
	}
	res, err := sim.LaunchContext(ctx, dev, run.Spec, cfg)
	if err != nil {
		return nil, fmt.Errorf("workloads: launch %s: %w", w.Name, err)
	}
	if run.Verify != nil {
		if err := run.Verify(dev, res); err != nil {
			return nil, fmt.Errorf("workloads: verify %s: %w", w.Name, err)
		}
	}
	return res, nil
}

// almostEqual compares floats with a relative tolerance, for verifying
// kernels whose operation order differs from the host reference.
func almostEqual(a, b, relTol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb > m {
		m = bb
	} else if -bb > m {
		m = -bb
	}
	return d <= relTol*m+1e-6
}
