package advisor

import (
	"context"
	"errors"
	"fmt"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/gpu"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// siteSweep covers one perturbed build+run of the sensitivity matrix.
var siteSweep = faultinject.Register("advisor.sweep")

// Sweep runs the microarchitectural sensitivity analysis (Pompougnac et
// al.): the analyzed kernel is re-built and re-simulated under every
// perturbation of the gpu.Perturbations matrix — one hardware resource
// scaled at a time — and the cycle deltas identify the resource the
// kernel is actually bound by. The full matrix is attached to the report;
// each finding gets a filtered view over the resources its bottleneck
// class can involve, and its GPA-style estimated speedup is widened by
// the measured headroom of its dominant resource. Findings are re-sorted
// by the updated payoff.
//
// The kernel is re-*built* per perturbed arch, not just re-run: the
// scoreboard-count perturbation changes instruction lowering (control
// info assignment), so reusing the baseline SASS would under-report it.
//
// workload/scale/arch/cfg must match the analyzed run, exactly as for
// Verify. A dry-run report cannot be swept (no baseline measurement). A
// failing perturbation run drops only its own matrix entry, recorded in
// the degradation ledger; an expired deadline skips the remaining
// entries the same way, while an explicit cancellation aborts the pass.
func Sweep(ctx context.Context, rep *scout.Report, workload string, scale int, arch gpu.Arch, cfg sim.Config) (*scout.Sensitivity, error) {
	if rep == nil {
		return nil, fmt.Errorf("advisor: nil report")
	}
	if rep.DryRun || rep.Result == nil {
		return nil, fmt.Errorf("advisor: cannot sweep a dry-run report (no baseline measurement)")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	sens := &scout.Sensitivity{BaselineCycles: rep.Result.Cycles}
	for _, p := range gpu.Perturbations() {
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, fmt.Errorf("advisor: %w", err)
			}
			rep.Degradations = append(rep.Degradations, scout.Degradation{
				Stage: scout.StageVerify, Site: siteSweep, Kind: scout.DegradeTimeout,
				Detail: fmt.Sprintf("perturbation %s skipped: sweep budget exhausted", p.ID()),
			})
			continue
		}
		var cycles float64
		if err := scout.Guard(scout.StageVerify, siteSweep, func() error {
			if err := faultinject.Hit(siteSweep); err != nil {
				return err
			}
			pa := p.Apply(arch)
			w, err := workloads.BuildArch(workload, scale, pa)
			if err != nil {
				return fmt.Errorf("build under %s: %w", p.ID(), err)
			}
			res, err := workloads.ExecuteContext(ctx, w, sim.NewDevice(pa), cfg)
			if err != nil {
				return fmt.Errorf("run under %s: %w", p.ID(), err)
			}
			cycles = res.Cycles
			return nil
		}); err != nil {
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				return nil, fmt.Errorf("advisor: %w", err)
			}
			d := scout.DegradationFor(scout.StageVerify, siteSweep, err, ctx.Err() != nil)
			d.Detail = fmt.Sprintf("perturbation %s missing from sweep: %s", p.ID(), d.Detail)
			rep.Degradations = append(rep.Degradations, d)
			continue
		}
		sens.Deltas = append(sens.Deltas, scout.ResourceDelta{
			Resource:  p.Resource,
			Direction: p.Direction,
			Factor:    p.Factor,
			Cycles:    cycles,
			Delta:     cycles - sens.BaselineCycles,
			Helps:     p.Helps,
		})
	}
	sens.Rank()
	rep.Sensitivity = sens

	// Attach per-finding filtered views and fold the measured headroom
	// into the payoff estimate: the stall-based ceiling says how much of
	// the kernel the finding touches; the dominant resource's relief says
	// how much a real fix in that class actually buys.
	for i := range rep.Findings {
		f := &rep.Findings[i]
		fs := sens.FilterFor(f.Analysis)
		f.Sensitivity = fs
		if f.EstSpeedup > 0 && fs.Dominant != "" {
			headroom := fs.DominantRelief - 1
			if headroom > 0 {
				f.EstSpeedup *= 1 + headroom
			}
		}
	}
	rep.SortFindings()
	return sens, nil
}
