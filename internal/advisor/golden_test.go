package advisor

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuscout/internal/gpu"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden report files")

// goldenScales pins each workload family to a small problem size so the
// suite runs in seconds; the scale is part of the golden contract.
var goldenScales = map[string]int{
	"histogram": 4,
	"jacobi":    128,
	"mixbench":  8,
	"reduction": 0, // fixed size
	"sgemm":     64,
	"spill":     8,
	"transpose": 64,
}

func goldenScale(t *testing.T, name string) int {
	family := name
	if i := strings.IndexByte(name, '_'); i >= 0 {
		family = name[:i]
	}
	scale, ok := goldenScales[family]
	if !ok {
		t.Fatalf("no golden scale for workload family %q (add it to goldenScales)", family)
	}
	return scale
}

// goldenReport produces the full advisor-v2 report for one workload at
// the given simulator parallelism, in both text and JSON forms: analysis
// with backward stall slices, counterfactual verification, and the
// sensitivity sweep with its payoff-ranked finding order. The goldens
// lock the complete surface — slice chains, sensitivity matrices, and
// estimated-speedup ordering included. The SASS-analysis overhead is
// wall-clock time and is zeroed: everything else in a report is
// deterministic.
func goldenReport(t *testing.T, name string, workers int, arch gpu.Arch) (string, []byte) {
	t.Helper()
	scale := goldenScale(t, name)
	cfg := sim.Config{SampleSMs: 1, Workers: workers}
	w, err := workloads.BuildArch(name, scale, arch)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	run := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		return workloads.ExecuteContext(ctx, w, sim.NewDevice(arch), c)
	}
	rep, err := scout.AnalyzeContext(context.Background(), arch, w.Kernel, run,
		scout.Options{Sim: cfg, StallSlices: true})
	if err != nil {
		t.Fatalf("analyze %s: %v", name, err)
	}
	if _, err := Verify(context.Background(), rep, name, scale, arch, cfg); err != nil {
		t.Fatalf("verify %s: %v", name, err)
	}
	if _, err := Sweep(context.Background(), rep, name, scale, arch, cfg); err != nil {
		t.Fatalf("sweep %s: %v", name, err)
	}
	rep.OverheadSASSCycles = 0
	text := rep.Render()
	js, err := rep.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal %s: %v", name, err)
	}
	return text, append(js, '\n')
}

// runGoldenSuite locks down the full verified report — text and JSON —
// for every registered workload on one architecture, and proves the
// simulator's determinism guarantee at the report level: Workers=1 and
// Workers=4 must render byte-identically.
func runGoldenSuite(t *testing.T, arch gpu.Arch, dir string) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			text, js := goldenReport(t, name, 1, arch)
			textPar, jsPar := goldenReport(t, name, 4, arch)
			if text != textPar {
				t.Errorf("text report differs between Workers=1 and Workers=4:\n%s",
					firstDiff(text, textPar))
			}
			if !bytes.Equal(js, jsPar) {
				t.Errorf("JSON report differs between Workers=1 and Workers=4:\n%s",
					firstDiff(string(js), string(jsPar)))
			}

			txtPath := filepath.Join(dir, name+".txt")
			jsonPath := filepath.Join(dir, name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(txtPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(txtPath, []byte(text), 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(jsonPath, js, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			compareGolden(t, txtPath, []byte(text))
			compareGolden(t, jsonPath, js)
		})
	}
}

// TestGoldenReports is the sm_70 golden suite. Its files predate the
// arch-neutral IR refactor, so passing it proves the Volta backend's
// lowering is byte-identical to the pre-refactor compiler. Regenerate
// with: go test ./internal/advisor -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	runGoldenSuite(t, gpu.V100(), filepath.Join("testdata", "golden"))
}

// TestGoldenReportsSM80 is the same suite lowered and simulated for the
// Ampere-class sm_80 backend (cp.async fusion, wider L1 sectors, its own
// machine tables). Regenerate with:
// go test ./internal/advisor -run TestGoldenReportsSM80 -update
func TestGoldenReportsSM80(t *testing.T) {
	runGoldenSuite(t, gpu.A100(), filepath.Join("testdata", "golden", "sm80"))
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (run with -update to accept):\n%s",
			path, firstDiff(string(got), string(want)))
	}
}

// firstDiff points at the first line where two renderings diverge.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("one rendering is a prefix of the other (got %d lines, want %d)",
		len(al), len(bl))
}
