package advisor

import (
	"context"
	"strings"
	"testing"

	"gpuscout/internal/gpu"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// analyzeSliced is analyze with backward stall slicing enabled.
func analyzeSliced(t *testing.T, name string, scale int, cfg sim.Config) *scout.Report {
	t.Helper()
	arch := gpu.V100()
	w, err := workloads.BuildArch(name, scale, arch)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	run := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		return workloads.ExecuteContext(ctx, w, sim.NewDevice(arch), c)
	}
	rep, err := scout.AnalyzeContext(context.Background(), arch, w.Kernel, run,
		scout.Options{Sim: cfg, StallSlices: true})
	if err != nil {
		t.Fatalf("analyze %s: %v", name, err)
	}
	return rep
}

// TestCaseStudySensitivity pins the tentpole acceptance criterion: each
// paper case study's headline finding must attribute the bottleneck to
// the resource the paper's narrative names. Mixbench's naive kernel is
// bandwidth-starved (§5.1: vectorization feeds the DRAM bus fewer, wider
// requests); Jacobi's stencil re-reads neighbors through the latency-bound
// global path (§5.2: the texture cache hides that latency); SGEMM's inner
// product is a chain of dependent latency-exposed loads (§5.3: shared
// tiles turn them into on-chip accesses).
func TestCaseStudySensitivity(t *testing.T) {
	cases := []struct {
		workload string
		scale    int
		analysis string
		dominant string
	}{
		{"mixbench_sp_naive", 8, "vectorized_load", gpu.ResourceDRAMBandwidth},
		{"jacobi_naive", 512, "texture_memory", gpu.ResourceDRAMLatency},
		{"sgemm_naive", 64, "shared_memory", gpu.ResourceDRAMLatency},
	}
	for _, tc := range cases {
		t.Run(tc.workload+"/"+tc.analysis, func(t *testing.T) {
			cfg := sim.Config{SampleSMs: 1}
			rep := analyze(t, tc.workload, tc.scale, cfg)
			s, err := Sweep(context.Background(), rep, tc.workload, tc.scale, gpu.V100(), cfg)
			if err != nil {
				t.Fatalf("Sweep: %v", err)
			}
			if len(s.Deltas) != 2*len(gpu.ResourceNames()) {
				t.Errorf("sweep ran %d perturbations, want %d", len(s.Deltas), 2*len(gpu.ResourceNames()))
			}
			if s.BaselineCycles != rep.Result.Cycles {
				t.Errorf("baseline %g != measured %g", s.BaselineCycles, rep.Result.Cycles)
			}
			if rep.Sensitivity != s {
				t.Error("sweep not attached to the report")
			}
			f := findingFor(rep, tc.analysis)
			if f == nil {
				t.Fatalf("no %s finding on %s", tc.analysis, tc.workload)
			}
			if f.Sensitivity == nil {
				t.Fatal("finding has no sensitivity block")
			}
			if f.Sensitivity.Dominant != tc.dominant {
				t.Errorf("dominant = %q (relief %.3f), want %q",
					f.Sensitivity.Dominant, f.Sensitivity.DominantRelief, tc.dominant)
			}
			if f.Sensitivity.DominantRelief < scout.NeutralSensitivity {
				t.Errorf("dominant relief %.4f below the neutral band", f.Sensitivity.DominantRelief)
			}
			if f.EstSpeedup <= 1 {
				t.Errorf("EstSpeedup = %.3f, want > 1 after sweep widening", f.EstSpeedup)
			}
		})
	}
}

// TestSweepRanksFindings checks the GPA-style ordering contract: after a
// sweep, findings appear in descending estimated-speedup order.
func TestSweepRanksFindings(t *testing.T) {
	cfg := sim.Config{SampleSMs: 1}
	rep := analyze(t, "jacobi_naive", 512, cfg)
	if _, err := Sweep(context.Background(), rep, "jacobi_naive", 512, gpu.V100(), cfg); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(rep.Findings) < 2 {
		t.Fatalf("want several findings, got %d", len(rep.Findings))
	}
	for i := 1; i < len(rep.Findings); i++ {
		if rep.Findings[i-1].EstSpeedup < rep.Findings[i].EstSpeedup {
			t.Errorf("findings out of payoff order at %d: %.3f < %.3f (%s after %s)",
				i, rep.Findings[i-1].EstSpeedup, rep.Findings[i].EstSpeedup,
				rep.Findings[i-1].Analysis, rep.Findings[i].Analysis)
		}
		if rep.Findings[i].EstSpeedup <= 0 {
			t.Errorf("finding %s has no payoff estimate", rep.Findings[i].Analysis)
		}
	}
}

// TestSweepSurfacesInReport checks the sweep reaches both renderings.
func TestSweepSurfacesInReport(t *testing.T) {
	cfg := sim.Config{SampleSMs: 1}
	rep := analyze(t, "mixbench_sp_naive", 8, cfg)
	if _, err := Sweep(context.Background(), rep, "mixbench_sp_naive", 8, gpu.V100(), cfg); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	text := rep.Render()
	for _, want := range []string{
		"Sensitivity matrix (kernel cycles under perturbed hardware)",
		"Sensitivity (kernel re-simulated under perturbed hardware)",
		"dominant resource: dram_bandwidth",
		"Payoff:  estimated speedup ceiling",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q", want)
		}
	}
	data, err := rep.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	js := string(data)
	for _, want := range []string{
		`"sensitivity"`, `"dominant": "dram_bandwidth"`, `"baseline_cycles"`,
		`"est_speedup"`, `"deltas"`, `"resource"`,
	} {
		if !strings.Contains(js, want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}

// TestStallSlicesReachProducer pins the LEO-style slicing criterion: the
// slice attached to a latency finding must walk past the stalled consumer
// back to the memory instruction that produced the awaited value.
func TestStallSlicesReachProducer(t *testing.T) {
	cfg := sim.Config{SampleSMs: 1}
	for _, tc := range []struct {
		workload string
		scale    int
		analysis string
	}{
		{"sgemm_naive", 64, "shared_memory"},
		{"mixbench_sp_naive", 8, "vectorized_load"},
	} {
		rep := analyzeSliced(t, tc.workload, tc.scale, cfg)
		f := findingFor(rep, tc.analysis)
		if f == nil {
			t.Fatalf("no %s finding on %s", tc.analysis, tc.workload)
		}
		if len(f.StallSlices) == 0 {
			t.Fatalf("%s: no stall slices on the %s finding", tc.workload, tc.analysis)
		}
		for _, sl := range f.StallSlices {
			if len(sl.Steps) < 2 {
				t.Errorf("%s: slice at pc %#x has %d steps, want the chain", tc.workload, sl.PC, len(sl.Steps))
			}
			hasRoot, hasLoad := false, false
			for _, st := range sl.Steps {
				if st.Depth == 0 {
					hasRoot = true
				}
				if st.Depth > 0 && strings.Contains(st.SASS, "LDG") {
					hasLoad = true
				}
			}
			if !hasRoot {
				t.Errorf("%s: slice at pc %#x lost its stalled root", tc.workload, sl.PC)
			}
			if !hasLoad {
				t.Errorf("%s: slice at pc %#x never reaches the producing load: %+v",
					tc.workload, sl.PC, sl.Steps)
			}
		}
		if text := rep.Render(); !strings.Contains(text, "Stall slice (producer chain") {
			t.Errorf("%s: rendered report missing the slice section", tc.workload)
		}
	}
}

// TestSweepRejectsDryRun mirrors the verifier's contract.
func TestSweepRejectsDryRun(t *testing.T) {
	if _, err := Sweep(context.Background(), nil, "sgemm_naive", 0, gpu.V100(), sim.Config{}); err == nil {
		t.Error("nil report accepted")
	}
}

// TestSweepHonorsContext: explicit cancellation aborts the pass.
func TestSweepHonorsContext(t *testing.T) {
	cfg := sim.Config{SampleSMs: 1}
	rep := analyze(t, "sgemm_naive", 64, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, rep, "sgemm_naive", 64, gpu.V100(), cfg); err == nil {
		t.Error("cancelled context did not abort the sweep")
	}
}
