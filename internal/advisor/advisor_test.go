package advisor

import (
	"context"
	"strings"
	"testing"

	"gpuscout/internal/gpu"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// analyze runs the full three-pillar pipeline on a workload, the way the
// facade's AnalyzeWorkload does, on the default Volta target.
func analyze(t *testing.T, name string, scale int, cfg sim.Config) *scout.Report {
	return analyzeArch(t, name, scale, cfg, gpu.V100())
}

// analyzeArch is analyze for an explicit target architecture: the
// workload is lowered by that arch's codegen backend and simulated on
// that arch's machine model.
func analyzeArch(t *testing.T, name string, scale int, cfg sim.Config, arch gpu.Arch) *scout.Report {
	t.Helper()
	w, err := workloads.BuildArch(name, scale, arch)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	run := func(ctx context.Context, c sim.Config) (*sim.Result, error) {
		return workloads.ExecuteContext(ctx, w, sim.NewDevice(arch), c)
	}
	rep, err := scout.AnalyzeContext(context.Background(), arch, w.Kernel, run, scout.Options{Sim: cfg})
	if err != nil {
		t.Fatalf("analyze %s: %v", name, err)
	}
	return rep
}

func findingFor(rep *scout.Report, analysis string) *scout.Finding {
	for i := range rep.Findings {
		if rep.Findings[i].Analysis == analysis {
			return &rep.Findings[i]
		}
	}
	return nil
}

// TestCaseStudiesConfirmed is the end-to-end find -> fix -> re-simulate
// loop over the paper's three §5 case studies: each detector finding must
// verify as confirmed with a measured speedup > 1.0x.
func TestCaseStudiesConfirmed(t *testing.T) {
	cases := []struct {
		workload string
		analysis string
		fixed    string
		scale    int
	}{
		// §5.1: Mixbench, vectorized float4 loads.
		{"mixbench_sp_naive", "vectorized_load", "mixbench_sp_vec4", 8},
		// §5.2: Jacobi, shared-memory stencil tiling (amortizes at scale).
		{"jacobi_naive", "shared_memory", "jacobi_shared", 512},
		// §5.3: SGEMM, const __restrict__ inputs.
		{"sgemm_naive", "readonly_cache", "sgemm_restrict", 64},
	}
	for _, tc := range cases {
		t.Run(tc.workload+"/"+tc.analysis, func(t *testing.T) {
			cfg := sim.Config{SampleSMs: 1}
			rep := analyze(t, tc.workload, tc.scale, cfg)
			sum, err := Verify(context.Background(), rep, tc.workload, tc.scale, gpu.V100(), cfg)
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if sum.Checked == 0 {
				t.Fatal("no findings had paired variants")
			}
			f := findingFor(rep, tc.analysis)
			if f == nil {
				t.Fatalf("no %s finding on %s", tc.analysis, tc.workload)
			}
			v := f.Verification
			if v == nil {
				t.Fatalf("%s finding has no Verification block", tc.analysis)
			}
			if v.Fixed != tc.fixed {
				t.Errorf("Fixed = %s, want %s", v.Fixed, tc.fixed)
			}
			if v.Verdict != scout.VerdictConfirmed {
				t.Errorf("verdict = %s (speedup %.3fx), want confirmed", v.Verdict, v.Speedup)
			}
			if v.Speedup <= 1.0 {
				t.Errorf("speedup = %.3fx, want > 1.0", v.Speedup)
			}
			if v.BaselineCycles <= 0 || v.FixedCycles <= 0 {
				t.Errorf("cycles not recorded: %g -> %g", v.BaselineCycles, v.FixedCycles)
			}
		})
	}
}

// TestRefutedAtSmallScale shows the advisor catching bad advice: at a
// small problem size the shared-memory tiling's staging overhead is not
// amortized, and the measured verdict flips to refuted.
func TestRefutedAtSmallScale(t *testing.T) {
	cfg := sim.Config{SampleSMs: 1}
	rep := analyze(t, "jacobi_naive", 128, cfg)
	if _, err := Verify(context.Background(), rep, "jacobi_naive", 128, gpu.V100(), cfg); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	f := findingFor(rep, "shared_memory")
	if f == nil || f.Verification == nil {
		t.Fatal("no verified shared_memory finding")
	}
	if v := f.Verification; v.Verdict != scout.VerdictRefuted {
		t.Errorf("verdict = %s (speedup %.3fx), want refuted at scale 128", v.Verdict, v.Speedup)
	}
}

// TestVerificationSurfacesInReport checks the verified evidence reaches
// both renderings: the text report and the JSON form.
func TestVerificationSurfacesInReport(t *testing.T) {
	cfg := sim.Config{SampleSMs: 1}
	rep := analyze(t, "sgemm_naive", 64, cfg)
	sum, err := Verify(context.Background(), rep, "sgemm_naive", 64, gpu.V100(), cfg)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if sum.Checked != sum.Confirmed+sum.Neutral+sum.Refuted {
		t.Errorf("summary inconsistent: %+v", sum)
	}

	text := rep.Render()
	for _, want := range []string{
		"Verification (recommendation re-executed)",
		"confirmed: sgemm_naive -> ",
		"applied change:",
		"stall long_scoreboard",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q", want)
		}
	}

	data, err := rep.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	js := string(data)
	for _, want := range []string{
		`"verification"`, `"verdict": "confirmed"`, `"speedup"`,
		`"baseline_cycles"`, `"stall_deltas"`,
	} {
		if !strings.Contains(js, want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}

// TestPairsTable sanity-checks the recommendation table: ordering,
// lookups, and that every named workload actually exists in the registry.
func TestPairsTable(t *testing.T) {
	ps := Pairs()
	if len(ps) == 0 {
		t.Fatal("empty pairs table")
	}
	registered := map[string]bool{}
	for _, n := range workloads.Names() {
		registered[n] = true
	}
	for i, p := range ps {
		if !registered[p.Workload] {
			t.Errorf("pair %d: baseline %q is not a registered workload", i, p.Workload)
		}
		if !registered[p.Fixed] {
			t.Errorf("pair %d: variant %q is not a registered workload", i, p.Fixed)
		}
		if p.Change == "" {
			t.Errorf("pair %d (%s/%s): empty change description", i, p.Workload, p.Analysis)
		}
		if i > 0 {
			prev := ps[i-1]
			if p.Workload < prev.Workload ||
				(p.Workload == prev.Workload && p.Analysis <= prev.Analysis) {
				t.Errorf("pairs not strictly ordered at %d: %s/%s after %s/%s",
					i, p.Workload, p.Analysis, prev.Workload, prev.Analysis)
			}
		}
	}

	if p, ok := PairFor("sgemm_naive", "shared_memory"); !ok || p.Fixed != "sgemm_shared" {
		t.Errorf("PairFor(sgemm_naive, shared_memory) = %+v, %t", p, ok)
	}
	if _, ok := PairFor("sgemm_naive", "no_such_analysis"); ok {
		t.Error("PairFor invented a pair for an unknown analysis")
	}

	// Pairs returns a copy: mutating it must not corrupt the table.
	ps[0].Fixed = "clobbered"
	if again := Pairs(); again[0].Fixed == "clobbered" {
		t.Error("Pairs exposes the internal table")
	}
}

func TestVerifyRejectsDryRun(t *testing.T) {
	if _, err := Verify(context.Background(), nil, "sgemm_naive", 0, gpu.V100(), sim.Config{}); err == nil {
		t.Error("nil report accepted")
	}
	w, err := workloads.Build("sgemm_naive", 64)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scout.Analyze(gpu.V100(), w.Kernel, nil, scout.Options{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(context.Background(), rep, "sgemm_naive", 64, gpu.V100(), sim.Config{}); err == nil {
		t.Error("dry-run report accepted")
	}
}

func TestVerifyHonorsContext(t *testing.T) {
	cfg := sim.Config{SampleSMs: 1}
	rep := analyze(t, "sgemm_naive", 64, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Verify(ctx, rep, "sgemm_naive", 64, gpu.V100(), cfg); err == nil {
		t.Error("cancelled context did not abort verification")
	}
}

func TestVerifyNoPairedFindings(t *testing.T) {
	// transpose_naive has no entry in the pairs table, so verification is
	// a no-op with an empty summary, not an error.
	cfg := sim.Config{SampleSMs: 1}
	rep := analyze(t, "transpose_naive", 0, cfg)
	sum, err := Verify(context.Background(), rep, "transpose_naive", 0, gpu.V100(), cfg)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if sum.Checked != 0 {
		t.Errorf("Checked = %d, want 0 (no pairs for transpose_naive)", sum.Checked)
	}
	for i := range rep.Findings {
		if rep.Findings[i].Verification != nil {
			t.Errorf("finding %s unexpectedly verified", rep.Findings[i].Analysis)
		}
	}
}

func TestSummaryAdd(t *testing.T) {
	var s Summary
	s.Add(scout.VerdictConfirmed)
	s.Add(scout.VerdictConfirmed)
	s.Add(scout.VerdictRefuted)
	s.Add(scout.VerdictNeutral)
	if s.Checked != 4 || s.Confirmed != 2 || s.Refuted != 1 || s.Neutral != 1 {
		t.Errorf("summary = %+v", s)
	}
}

func TestGrade(t *testing.T) {
	for _, tc := range []struct {
		speedup float64
		want    scout.Verdict
	}{
		{1.50, scout.VerdictConfirmed},
		{1.02, scout.VerdictConfirmed},
		{1.01, scout.VerdictNeutral},
		{1.00, scout.VerdictNeutral},
		{0.99, scout.VerdictNeutral},
		{0.98, scout.VerdictRefuted},
		{0.50, scout.VerdictRefuted},
	} {
		if got := scout.Grade(tc.speedup); got != tc.want {
			t.Errorf("Grade(%g) = %s, want %s", tc.speedup, got, tc.want)
		}
	}
}
