// Package advisor is the counterfactual verification engine: where scout
// stops at "we recommend X", the advisor actually applies X. Every §4
// detector recommendation that has a hand-optimized twin among the case
// study workloads is mapped to that variant, the variant is re-executed
// through the simulator under the same configuration, and the measured
// speedup, stall shifts, and metric deltas are attached to the finding as
// a Verification block with a confirmed/neutral/refuted verdict. This
// reproduces the paper's §5 case-study loop (find -> fix -> measure) as
// an automated step, and goes one step past GPA's estimated speedups:
// the numbers are measurements of the fixed kernel, not projections.
package advisor

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/gpu"
	"gpuscout/internal/ncu"
	"gpuscout/internal/scout"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

// Fault-injection sites: siteVerify covers one variant's build+run+collect,
// siteAttach covers attaching one finding's Verification block.
var (
	siteVerify = faultinject.Register("advisor.verify")
	siteAttach = faultinject.Register("advisor.attach")
)

// Pair maps one detector recommendation on a baseline workload to the
// optimized variant that implements it.
type Pair struct {
	// Workload is the baseline (naive) workload name.
	Workload string
	// Analysis is the detector whose recommendation the variant applies.
	Analysis string
	// Fixed is the optimized variant's workload name.
	Fixed string
	// Change describes the source-level difference.
	Change string
}

// pairs is the recommendation->variant table, ordered by baseline then
// analysis. Every entry re-states one of the paper's §5 find->fix steps.
var pairs = []Pair{
	{"histogram_global", "shared_atomics", "histogram_shared",
		"accumulate per-block histograms in __shared__ memory, flush to global once per block (§4.4)"},
	{"jacobi_naive", "readonly_cache", "jacobi_restrict",
		"mark the input plane const __restrict__ so loads issue as LDG.E.NC through the read-only cache (§4.5)"},
	{"jacobi_naive", "shared_memory", "jacobi_shared",
		"tile the stencil neighborhood (plus halo) into __shared__ memory once per block (§4.3, §5.2)"},
	{"jacobi_naive", "texture_memory", "jacobi_texture",
		"bind the input plane to a texture and sample it with tex2D (§4.6, §5.2)"},
	{"mixbench_dp_naive", "vectorized_load", "mixbench_dp_vec4",
		"load four elements per instruction with double2/float4-style vector accesses (§4.1, §5.1)"},
	{"mixbench_int_naive", "vectorized_load", "mixbench_int_vec4",
		"load four elements per instruction with int4 vector accesses (§4.1, §5.1)"},
	{"mixbench_sp_naive", "vectorized_load", "mixbench_sp_vec4",
		"load four elements per instruction with float4 vector accesses (§4.1, §5.1)"},
	{"reduction_atomic", "shared_atomics", "reduction_shfl",
		"reduce within the block via warp shuffles and shared memory; one global atomic per block (§4.4)"},
	{"sgemm_naive", "readonly_cache", "sgemm_restrict",
		"declare A and B const __restrict__: loads become LDG.E.NC and the no-alias guarantee lets the compiler batch them (§4.5)"},
	{"sgemm_naive", "shared_memory", "sgemm_shared",
		"stage 16x64 tiles of A and B in __shared__ memory and compute from the tiles (§4.3, §5.3)"},
	{"spill_pressure", "register_spilling", "spill_relief",
		"raise the register budget (drop -maxrregcount) so the accumulators stay in registers (§4.2)"},
	{"transpose_shared", "bank_conflicts", "transpose_padded",
		"pad the shared-memory tile stride by one element to break the 16-way bank conflict (§4.3)"},
}

// Pairs returns a copy of the recommendation->variant table, ordered by
// baseline workload then analysis.
func Pairs() []Pair {
	out := make([]Pair, len(pairs))
	copy(out, pairs)
	return out
}

// PairFor finds the optimized variant for a finding of the given analysis
// on the given baseline workload.
func PairFor(workload, analysis string) (Pair, bool) {
	for _, p := range pairs {
		if p.Workload == workload && p.Analysis == analysis {
			return p, true
		}
	}
	return Pair{}, false
}

// Summary reports what one verification pass measured.
type Summary struct {
	// Checked counts findings that had a paired optimized variant.
	Checked int
	// Confirmed/Neutral/Refuted count the verdicts.
	Confirmed int
	Neutral   int
	Refuted   int
}

// Add records one verdict.
func (s *Summary) Add(v scout.Verdict) {
	s.Checked++
	switch v {
	case scout.VerdictConfirmed:
		s.Confirmed++
	case scout.VerdictRefuted:
		s.Refuted++
	default:
		s.Neutral++
	}
}

// fixedRun is one executed optimized variant, shared by all findings that
// map to it.
type fixedRun struct {
	pair    Pair
	result  *sim.Result
	metrics *ncu.MetricSet
}

// Verify re-executes the paired optimized variant for every finding in
// the report that has one, under the same simulator configuration the
// analysis used, and attaches the measured Verification block to the
// finding. workload and scale identify the analyzed baseline; cfg must be
// the sim.Config of the original run so the comparison is like-for-like.
// ctx cancels long variant runs (each launch polls it).
//
// Findings without a paired variant are left untouched. A dry-run report
// cannot be verified: there is no baseline measurement to compare to.
func Verify(ctx context.Context, rep *scout.Report, workload string, scale int, arch gpu.Arch, cfg sim.Config) (*Summary, error) {
	if rep == nil {
		return nil, fmt.Errorf("advisor: nil report")
	}
	if rep.DryRun || rep.Result == nil {
		return nil, fmt.Errorf("advisor: cannot verify a dry-run report (no baseline measurement)")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Pass 1: group findings by the variant they map to, collecting the
	// union of metric names each variant's collection must cover.
	needed := map[string][]string{} // fixed name -> metric names
	matched := false
	for i := range rep.Findings {
		f := &rep.Findings[i]
		p, ok := PairFor(workload, f.Analysis)
		if !ok {
			continue
		}
		matched = true
		needed[p.Fixed] = appendUnique(needed[p.Fixed], f.RelevantMetrics...)
		needed[p.Fixed] = appendUnique(needed[p.Fixed], f.CautionMetrics...)
	}
	summary := &Summary{}
	if !matched {
		return summary, nil
	}

	// Pass 2: execute each distinct variant once and collect its metrics.
	// Each variant runs under its own panic guard: a crashing or failing
	// variant leaves only the findings mapped to it unverified, recorded
	// in the report's degradation ledger. When the verify budget (the ctx
	// deadline) expires, the remaining variants are skipped the same way —
	// findings ship unverified rather than the job timing out. An explicit
	// cancellation still aborts the whole pass.
	runs := map[string]*fixedRun{}
	fixedNames := make([]string, 0, len(needed))
	for name := range needed {
		fixedNames = append(fixedNames, name)
	}
	sort.Strings(fixedNames)
	for _, name := range fixedNames {
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, fmt.Errorf("advisor: %w", err)
			}
			rep.Degradations = append(rep.Degradations, scout.Degradation{
				Stage: scout.StageVerify, Site: siteVerify, Kind: scout.DegradeTimeout,
				Detail: fmt.Sprintf("variant %s skipped: verify budget exhausted; paired findings ship unverified", name),
			})
			continue
		}
		run := &fixedRun{}
		if err := scout.Guard(scout.StageVerify, siteVerify, func() error {
			if err := faultinject.Hit(siteVerify); err != nil {
				return err
			}
			// The variant must be lowered for the same backend as the
			// baseline, or the comparison measures the arch, not the fix.
			w, err := workloads.BuildArch(name, scale, arch)
			if err != nil {
				return fmt.Errorf("build variant: %w", err)
			}
			res, err := workloads.ExecuteContext(ctx, w, sim.NewDevice(arch), cfg)
			if err != nil {
				return fmt.Errorf("run variant %s: %w", name, err)
			}
			ms, err := ncu.Collector{Arch: arch}.Collect(
				ncu.Context{Kernel: w.Kernel, Result: res}, needed[name])
			if err != nil {
				return fmt.Errorf("collect variant metrics %s: %w", name, err)
			}
			run.result, run.metrics = res, ms
			return nil
		}); err != nil {
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				return nil, fmt.Errorf("advisor: %w", err)
			}
			d := scout.DegradationFor(scout.StageVerify, siteVerify, err, ctx.Err() != nil)
			d.Detail = fmt.Sprintf("variant %s unverified: %s", name, d.Detail)
			rep.Degradations = append(rep.Degradations, d)
			continue
		}
		runs[name] = run
	}

	// Pass 3: attach a Verification block to each paired finding, each
	// under its own guard — a panicking attach drops only that finding's
	// block.
	for i := range rep.Findings {
		f := &rep.Findings[i]
		p, ok := PairFor(workload, f.Analysis)
		if !ok {
			continue
		}
		run, ok := runs[p.Fixed]
		if !ok {
			continue // variant failed or was skipped; already in the ledger
		}
		if err := scout.Guard(scout.StageVerify, siteAttach, func() error {
			if err := faultinject.Hit(siteAttach); err != nil {
				return err
			}
			v := &scout.Verification{
				Workload:       workload,
				Fixed:          p.Fixed,
				Change:         p.Change,
				BaselineCycles: rep.Result.Cycles,
				FixedCycles:    run.result.Cycles,
			}
			if run.result.Cycles > 0 {
				v.Speedup = rep.Result.Cycles / run.result.Cycles
			}
			v.Verdict = scout.Grade(v.Speedup)
			for _, st := range f.RelevantStalls {
				v.StallDeltas = append(v.StallDeltas, scout.StallDelta{
					Stall:  st.String(),
					Before: rep.Result.StallShare(st),
					After:  run.result.StallShare(st),
				})
			}
			for _, name := range appendUnique(appendUnique(nil, f.RelevantMetrics...), f.CautionMetrics...) {
				before, okB := rep.Metrics.Get(name)
				after, okA := run.metrics.Get(name)
				if !okB || !okA || before == after {
					continue
				}
				v.MetricDeltas = append(v.MetricDeltas, scout.MetricDelta{
					Name: name, Before: before, After: after,
				})
			}
			f.Verification = v
			summary.Add(v.Verdict)
			return nil
		}); err != nil {
			f.Verification = nil
			d := scout.DegradationFor(scout.StageVerify, siteAttach, err, false)
			d.Detail = fmt.Sprintf("finding %s (%s) unverified: %s", f.Analysis, p.Fixed, d.Detail)
			rep.Degradations = append(rep.Degradations, d)
		}
	}
	return summary, nil
}

// appendUnique appends the names not already present, preserving order.
func appendUnique(dst []string, names ...string) []string {
	for _, n := range names {
		dup := false
		for _, have := range dst {
			if have == n {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, n)
		}
	}
	return dst
}
