// Package ncu models the NVIDIA Nsight Compute CLI (§2.3): a registry of
// named hardware metrics computed from the simulator's counters, and a
// replay-based collection model whose cost reproduces the Fig. 6 overhead
// profile (metric collection dominates GPUscout's runtime).
package ncu

import (
	"fmt"
	"sort"

	"gpuscout/internal/sass"
	"gpuscout/internal/sim"
)

// Context is everything metric formulas may read.
type Context struct {
	Kernel *sass.Kernel
	Result *sim.Result
}

// Metric is one collectable named quantity.
type Metric struct {
	Name        string
	Description string
	Unit        string
	Compute     func(Context) float64
}

// scaled multiplies a sampled-block counter up to the whole chip.
func scaled(v uint64, ctx Context) float64 {
	return float64(v) * ctx.Result.Scale
}

func pct(v float64) float64 { return v * 100 }

// stallPct returns a per-warp-active stall percentage, matching the
// smsp__warp_issue_stalled_*_per_warp_active.pct metric family.
func stallPct(s sim.Stall) func(Context) float64 {
	return func(ctx Context) float64 {
		c := ctx.Result.Counters
		if c.ActiveWarpCycles == 0 {
			return 0
		}
		return pct(c.StallCycles[s] / c.ActiveWarpCycles)
	}
}

var registry = []Metric{
	{"gpu__time_duration.sum", "kernel execution duration", "ns",
		func(ctx Context) float64 { return ctx.Result.DurationSec * 1e9 }},
	{"sm__cycles_elapsed.max", "elapsed SM cycles", "cycle",
		func(ctx Context) float64 { return ctx.Result.Cycles }},
	{"launch__registers_per_thread", "registers allocated per thread", "register",
		func(ctx Context) float64 { return float64(ctx.Kernel.NumRegs) }},
	{"launch__shared_mem_per_block_static", "static shared memory per block", "byte",
		func(ctx Context) float64 { return float64(ctx.Kernel.SharedBytes) }},
	{"launch__local_mem_per_thread", "local memory per thread (spill area)", "byte",
		func(ctx Context) float64 { return float64(ctx.Kernel.LocalBytes) }},
	{"sm__warps_active.avg.pct_of_peak_sustained_active", "achieved occupancy", "%",
		func(ctx Context) float64 { return pct(ctx.Result.AchievedOccupancy) }},
	{"sm__maximum_warps_per_active_cycle_pct", "theoretical occupancy", "%",
		func(ctx Context) float64 { return pct(ctx.Result.Occupancy.Theoretical) }},
	{"smsp__inst_executed.sum", "warp instructions executed", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.WarpInsts, ctx) }},
	{"smsp__thread_inst_executed.sum", "thread instructions executed", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.ThreadInsts, ctx) }},
	{"smsp__issue_active.avg.pct_of_peak_sustained_active", "issue slot utilization", "%",
		func(ctx Context) float64 {
			c := ctx.Result.Counters
			if c.SMBusyCycles == 0 {
				return 0
			}
			return pct(float64(c.WarpInsts) / (c.SMBusyCycles * 4))
		}},

	// L1TEX global path.
	{"l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum", "global load sectors at L1TEX", "sector",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.GlobalLdSectors, ctx) }},
	{"l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum", "global store sectors at L1TEX", "sector",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.GlobalStSectors, ctx) }},
	{"l1tex__t_sector_pipe_lsu_mem_global_op_ld_hit_rate.pct", "L1 hit rate for global loads", "%",
		func(ctx Context) float64 {
			c := ctx.Result.Counters
			if c.GlobalLdSectors == 0 {
				return 0
			}
			return pct(float64(c.GlobalLdSectorHits) / float64(c.GlobalLdSectors))
		}},

	// L1TEX local path (register spills, §4.2).
	{"l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum", "local load sectors at L1TEX", "sector",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.LocalLdSectors, ctx) }},
	{"l1tex__t_sectors_pipe_lsu_mem_local_op_st.sum", "local store sectors at L1TEX", "sector",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.LocalStSectors, ctx) }},
	{"l1tex__t_sector_pipe_lsu_mem_local_op_ld_hit_rate.pct", "L1 hit rate for local loads", "%",
		func(ctx Context) float64 {
			c := ctx.Result.Counters
			if c.LocalLdSectors == 0 {
				return 0
			}
			return pct(float64(c.LocalLdSectorHits) / float64(c.LocalLdSectors))
		}},

	// Texture / read-only path (§4.5, §4.6).
	{"l1tex__t_sectors_pipe_tex_mem_texture.sum", "texture(+read-only) sectors", "sector",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.TexSectors, ctx) }},
	{"l1tex__t_sector_pipe_tex_mem_texture_hit_rate.pct", "texture cache hit rate", "%",
		func(ctx Context) float64 {
			c := ctx.Result.Counters
			if c.TexSectors == 0 {
				return 0
			}
			return pct(float64(c.TexSectorHits) / float64(c.TexSectors))
		}},

	// Shared memory (§4.3).
	{"smsp__inst_executed_op_shared_ld.sum", "shared load instructions", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.SharedLdInsts, ctx) }},
	{"smsp__inst_executed_op_shared_st.sum", "shared store instructions", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.SharedStInsts, ctx) }},
	{"l1tex__data_pipe_lsu_wavefronts_mem_shared_op_ld.sum", "shared load transactions", "wavefront",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.SharedLdTrans, ctx) }},
	{"l1tex__data_pipe_lsu_wavefronts_mem_shared_op_st.sum", "shared store transactions", "wavefront",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.SharedStTrans, ctx) }},

	// Memory instruction counts.
	{"smsp__inst_executed_op_global_ld.sum", "global load instructions", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.GlobalLdInsts, ctx) }},
	{"smsp__inst_executed_op_global_st.sum", "global store instructions", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.GlobalStInsts, ctx) }},
	{"smsp__inst_executed_op_local_ld.sum", "local load instructions", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.LocalLdInsts, ctx) }},
	{"smsp__inst_executed_op_local_st.sum", "local store instructions", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.LocalStInsts, ctx) }},
	{"smsp__inst_executed_op_texture.sum", "texture fetch instructions", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.TexInsts, ctx) }},
	{"smsp__sass_inst_executed_op_global_atom.sum", "global atomic thread ops", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.GlobalAtomics, ctx) }},
	{"smsp__sass_inst_executed_op_shared_atom.sum", "shared atomic thread ops", "inst",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.SharedAtomics, ctx) }},

	// L2 and DRAM.
	{"lts__t_sectors.sum", "L2 sector accesses", "sector",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.L2Sectors, ctx) }},
	{"lts__t_sectors_op_read.sum", "L2 read sectors", "sector",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.L2ReadSectors, ctx) }},
	{"lts__t_sectors_op_write.sum", "L2 write sectors", "sector",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.L2WriteSectors, ctx) }},
	{"lts__t_sector_hit_rate.pct", "L2 hit rate", "%",
		func(ctx Context) float64 {
			c := ctx.Result.Counters
			if c.L2Sectors == 0 {
				return 0
			}
			return pct(float64(c.L2Hits) / float64(c.L2Sectors))
		}},
	{"dram__bytes_read.sum", "bytes read from DRAM", "byte",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.DRAMReadBytes, ctx) }},
	{"dram__bytes_write.sum", "bytes written to DRAM", "byte",
		func(ctx Context) float64 { return scaled(ctx.Result.Counters.DRAMWriteBytes, ctx) }},

	// Warp stall percentages (per warp active).
	{"smsp__warp_issue_stalled_long_scoreboard_per_warp_active.pct",
		"warps stalled on L1TEX scoreboard dependency", "%", stallPct(sim.StallLongScoreboard)},
	{"smsp__warp_issue_stalled_short_scoreboard_per_warp_active.pct",
		"warps stalled on MIO scoreboard dependency", "%", stallPct(sim.StallShortScoreboard)},
	{"smsp__warp_issue_stalled_lg_throttle_per_warp_active.pct",
		"warps stalled on full LG instruction queue", "%", stallPct(sim.StallLGThrottle)},
	{"smsp__warp_issue_stalled_mio_throttle_per_warp_active.pct",
		"warps stalled on full MIO instruction queue", "%", stallPct(sim.StallMIOThrottle)},
	{"smsp__warp_issue_stalled_tex_throttle_per_warp_active.pct",
		"warps stalled on full TEX instruction queue", "%", stallPct(sim.StallTexThrottle)},
	{"smsp__warp_issue_stalled_barrier_per_warp_active.pct",
		"warps stalled at CTA barrier", "%", stallPct(sim.StallBarrier)},
	{"smsp__warp_issue_stalled_math_pipe_throttle_per_warp_active.pct",
		"warps stalled on busy math pipe", "%", stallPct(sim.StallMathPipeThrottle)},
	{"smsp__warp_issue_stalled_wait_per_warp_active.pct",
		"warps stalled on fixed-latency dependency", "%", stallPct(sim.StallWait)},
	{"smsp__warp_issue_stalled_not_selected_per_warp_active.pct",
		"warps eligible but not selected", "%", stallPct(sim.StallNotSelected)},
	{"smsp__warp_issue_stalled_drain_per_warp_active.pct",
		"warps draining stores at exit", "%", stallPct(sim.StallDrain)},
	{"smsp__warp_issue_stalled_branch_resolving_per_warp_active.pct",
		"warps waiting on branch resolution", "%", stallPct(sim.StallBranchResolving)},
}

var byName = func() map[string]*Metric {
	m := make(map[string]*Metric, len(registry))
	for i := range registry {
		m[registry[i].Name] = &registry[i]
	}
	return m
}()

// Lookup resolves a metric by name.
func Lookup(name string) (*Metric, bool) {
	m, ok := byName[name]
	return m, ok
}

// Names lists all registered metric names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for i := range registry {
		out = append(out, registry[i].Name)
	}
	sort.Strings(out)
	return out
}

// Value computes a single metric.
func Value(name string, ctx Context) (float64, error) {
	m, ok := Lookup(name)
	if !ok {
		return 0, fmt.Errorf("ncu: unknown metric %q", name)
	}
	return m.Compute(ctx), nil
}
