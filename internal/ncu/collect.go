package ncu

import (
	"fmt"
	"sort"

	"gpuscout/internal/faultinject"
	"gpuscout/internal/gpu"
)

// siteCollect is the fault-injection site covering metric collection.
var siteCollect = faultinject.Register("ncu.collect")

// MetricSet is the outcome of one modeled ncu collection run.
type MetricSet struct {
	Kernel string
	// Values holds the computed metric values by name.
	Values map[string]float64
	// Passes is how many kernel replays the collection needed; ncu groups
	// metrics into hardware-counter passes and replays the kernel once
	// per pass.
	Passes int
	// OverheadCycles is the modeled wall cost of the collection in SM
	// cycles: the dominant contributor to GPUscout's overhead (Fig. 6).
	OverheadCycles float64
}

// Collector models the ncu CLI: which metrics to gather and the replay
// cost structure.
type Collector struct {
	Arch gpu.Arch
	// MetricsPerPass is how many metrics fit in one replay pass
	// (hardware counter multiplexing); default 8.
	MetricsPerPass int
	// ReplayFactor is the slowdown of one profiled replay relative to the
	// bare kernel (serialization, cache-control, counter readout);
	// default 5.
	ReplayFactor float64
	// FixedCyclesPerPass models per-pass setup/teardown; default 4e6
	// cycles (~3 ms at V100 clocks).
	FixedCyclesPerPass float64
}

func (c Collector) metricsPerPass() int {
	if c.MetricsPerPass <= 0 {
		return 8
	}
	return c.MetricsPerPass
}

func (c Collector) replayFactor() float64 {
	if c.ReplayFactor <= 0 {
		return 5
	}
	return c.ReplayFactor
}

func (c Collector) fixedPerPass() float64 {
	if c.FixedCyclesPerPass <= 0 {
		return 4e6
	}
	return c.FixedCyclesPerPass
}

// Collect computes the named metrics for a finished launch. It fails on
// unknown metric names and on architectures ncu does not support
// (Pascal and older — the situation GPUscout's --dry-run exists for).
func (c Collector) Collect(ctx Context, names []string) (*MetricSet, error) {
	if err := faultinject.Hit(siteCollect); err != nil {
		return nil, fmt.Errorf("ncu: %w", err)
	}
	if !c.Arch.SupportsNCU() {
		return nil, fmt.Errorf("ncu: architecture %s (%s) is not supported by Nsight Compute; use the static (dry-run) analysis", c.Arch.Name, c.Arch.SM)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("ncu: no metrics requested")
	}
	seen := map[string]bool{}
	ms := &MetricSet{Kernel: ctx.Kernel.Name, Values: map[string]float64{}}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		v, err := Value(n, ctx)
		if err != nil {
			return nil, err
		}
		ms.Values[n] = v
	}
	uniq := len(ms.Values)
	ms.Passes = (uniq + c.metricsPerPass() - 1) / c.metricsPerPass()
	ms.OverheadCycles = float64(ms.Passes) * (ctx.Result.Cycles*c.replayFactor() + c.fixedPerPass())
	return ms, nil
}

// Get returns a collected value, with presence indication.
func (ms *MetricSet) Get(name string) (float64, bool) {
	v, ok := ms.Values[name]
	return v, ok
}

// MustGet returns a collected value or panics; for report code paths
// whose metric lists are static.
func (ms *MetricSet) MustGet(name string) float64 {
	v, ok := ms.Values[name]
	if !ok {
		panic(fmt.Sprintf("ncu: metric %q was not collected", name))
	}
	return v
}

// SortedNames lists the collected metric names, sorted.
func (ms *MetricSet) SortedNames() []string {
	out := make([]string, 0, len(ms.Values))
	for n := range ms.Values {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
