package ncu

import (
	"strings"
	"testing"

	"gpuscout/internal/gpu"
	"gpuscout/internal/sim"
	"gpuscout/internal/workloads"
)

func sampleContext(t *testing.T) Context {
	t.Helper()
	w, err := workloads.Build("mixbench_sp_naive", 4)
	if err != nil {
		t.Fatal(err)
	}
	dev := sim.NewDevice(gpu.V100())
	res, err := workloads.Execute(w, dev, sim.Config{SampleSMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	return Context{Kernel: w.Kernel, Result: res}
}

func TestRegistryIntegrity(t *testing.T) {
	names := Names()
	if len(names) < 30 {
		t.Fatalf("registry has only %d metrics", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate metric %q", n)
		}
		seen[n] = true
		m, ok := Lookup(n)
		if !ok || m.Compute == nil || m.Description == "" || m.Unit == "" {
			t.Errorf("metric %q incomplete", n)
		}
	}
	if _, ok := Lookup("no_such_metric"); ok {
		t.Error("Lookup found a nonexistent metric")
	}
}

func TestMetricValues(t *testing.T) {
	ctx := sampleContext(t)
	// Every metric computes without panicking and percentages stay in
	// range.
	for _, n := range Names() {
		v, err := Value(n, ctx)
		if err != nil {
			t.Fatalf("Value(%s): %v", n, err)
		}
		if strings.HasSuffix(n, ".pct") && (v < 0 || v > 100.000001) {
			t.Errorf("%s = %v out of [0,100]", n, v)
		}
		if strings.HasSuffix(n, ".sum") && v < 0 {
			t.Errorf("%s = %v negative", n, v)
		}
	}
	// Cross-checks against raw counters.
	v, _ := Value("launch__registers_per_thread", ctx)
	if int(v) != ctx.Kernel.NumRegs {
		t.Errorf("registers metric %v != kernel %d", v, ctx.Kernel.NumRegs)
	}
	ld, _ := Value("smsp__inst_executed_op_global_ld.sum", ctx)
	if want := float64(ctx.Result.Counters.GlobalLdInsts) * ctx.Result.Scale; ld != want {
		t.Errorf("global ld metric %v != scaled counter %v", ld, want)
	}
	// Stall percentages sum to <= 100 plus selected/active bookkeeping.
	var stallSum float64
	for _, n := range Names() {
		if strings.Contains(n, "warp_issue_stalled") {
			v, _ := Value(n, ctx)
			stallSum += v
		}
	}
	if stallSum <= 0 || stallSum > 100.01 {
		t.Errorf("stall percentages sum to %v", stallSum)
	}
}

func TestCollector(t *testing.T) {
	ctx := sampleContext(t)
	col := Collector{Arch: gpu.V100()}
	names := []string{
		"gpu__time_duration.sum",
		"launch__registers_per_thread",
		"dram__bytes_read.sum",
		"dram__bytes_read.sum", // duplicate: must not double-count passes
	}
	ms, err := col.Collect(ctx, names)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(ms.Values) != 3 {
		t.Errorf("collected %d values, want 3", len(ms.Values))
	}
	if ms.Passes != 1 {
		t.Errorf("passes = %d, want 1 for 3 metrics", ms.Passes)
	}
	if ms.OverheadCycles <= ctx.Result.Cycles {
		t.Error("collection overhead below one kernel replay")
	}
	// More metrics -> more passes -> more overhead.
	msAll, err := col.Collect(ctx, Names())
	if err != nil {
		t.Fatal(err)
	}
	if msAll.Passes <= ms.Passes || msAll.OverheadCycles <= ms.OverheadCycles {
		t.Error("overhead does not grow with metric count")
	}
	if got := ms.MustGet("launch__registers_per_thread"); int(got) != ctx.Kernel.NumRegs {
		t.Errorf("MustGet = %v", got)
	}
	if names := ms.SortedNames(); len(names) != 3 || names[0] > names[1] {
		t.Errorf("SortedNames = %v", names)
	}
}

func TestCollectorErrors(t *testing.T) {
	ctx := sampleContext(t)
	col := Collector{Arch: gpu.V100()}
	if _, err := col.Collect(ctx, nil); err == nil {
		t.Error("accepted empty metric list")
	}
	if _, err := col.Collect(ctx, []string{"bogus"}); err == nil {
		t.Error("accepted unknown metric")
	}
	// Pascal is unsupported by ncu (§3.1): collection must refuse,
	// pointing the user at --dry-run.
	pascal := Collector{Arch: gpu.P100()}
	_, err := pascal.Collect(ctx, []string{"gpu__time_duration.sum"})
	if err == nil || !strings.Contains(err.Error(), "dry-run") {
		t.Errorf("Pascal collection error = %v, want dry-run hint", err)
	}
	var ms MetricSet
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustGet on missing metric did not panic")
			}
		}()
		ms.MustGet("missing")
	}()
}
