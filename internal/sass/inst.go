package sass

import (
	"fmt"
	"strings"
)

// OperandKind discriminates the operand union in Operand.
type OperandKind uint8

const (
	OpdNone  OperandKind = iota
	OpdReg               // Rn / RZ
	OpdPred              // Pn / PT (optionally negated as a source)
	OpdImm               // integer or raw-bits immediate
	OpdMem               // [Rbase(+offset)] — address in a 64-bit register pair
	OpdConst             // c[bank][offset]
	OpdSpecial
)

// Operand is one source or destination of an instruction.
type Operand struct {
	Kind    OperandKind
	Reg     Reg        // OpdReg; OpdMem base register (pair Reg,Reg+1)
	Pred    Pred       // OpdPred
	Neg     bool       // OpdPred source negation (!P0); OpdReg fp negation (-R4)
	Imm     int64      // OpdImm value; OpdMem / OpdConst byte offset
	Bank    int        // OpdConst bank index
	Special SpecialReg // OpdSpecial
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Kind: OpdReg, Reg: r} }

// NegR makes a negated (fp) register operand.
func NegR(r Reg) Operand { return Operand{Kind: OpdReg, Reg: r, Neg: true} }

// P makes a predicate operand.
func P(p Pred) Operand { return Operand{Kind: OpdPred, Pred: p} }

// NotP makes a negated predicate source operand.
func NotP(p Pred) Operand { return Operand{Kind: OpdPred, Pred: p, Neg: true} }

// Imm makes an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: OpdImm, Imm: v} }

// Mem makes a memory operand [base+off]; base names a 64-bit register pair.
func Mem(base Reg, off int64) Operand { return Operand{Kind: OpdMem, Reg: base, Imm: off} }

// Const makes a constant-bank operand c[bank][off].
func Const(bank int, off int64) Operand { return Operand{Kind: OpdConst, Bank: bank, Imm: off} }

// SR makes a special-register operand.
func SR(s SpecialReg) Operand { return Operand{Kind: OpdSpecial, Special: s} }

func (o Operand) String() string {
	switch o.Kind {
	case OpdReg:
		if o.Neg {
			return "-" + o.Reg.String()
		}
		return o.Reg.String()
	case OpdPred:
		if o.Neg {
			return "!" + o.Pred.String()
		}
		return o.Pred.String()
	case OpdImm:
		if o.Imm < 0 {
			return fmt.Sprintf("-0x%x", -o.Imm)
		}
		return fmt.Sprintf("0x%x", o.Imm)
	case OpdMem:
		if o.Imm == 0 {
			return fmt.Sprintf("[%s]", o.Reg)
		}
		if o.Imm < 0 {
			return fmt.Sprintf("[%s+-0x%x]", o.Reg, -o.Imm)
		}
		return fmt.Sprintf("[%s+0x%x]", o.Reg, o.Imm)
	case OpdConst:
		return fmt.Sprintf("c[0x%x][0x%x]", o.Bank, o.Imm)
	case OpdSpecial:
		return o.Special.String()
	}
	return "<none>"
}

// Ctrl is the Volta-style per-instruction control information: compile-time
// scheduling hints that the hardware (and our simulator) obeys. Loads set a
// write scoreboard (WrBar); dependent instructions carry the slot in their
// WaitMask and cannot issue until the hardware releases it. Stall encodes a
// fixed issue-to-issue delay for in-pipe dependencies.
type Ctrl struct {
	Stall    uint8 // cycles the scheduler must wait after issuing this inst
	Yield    bool  // hint: deschedule this warp after issue
	WrBar    int8  // scoreboard slot set when this inst's result lands; -1 none
	RdBar    int8  // scoreboard slot set when operands have been read; -1 none
	WaitMask uint8 // bitmask of scoreboard slots that must be clear to issue
}

// NoBar is the "no scoreboard slot" sentinel for WrBar/RdBar.
const NoBar int8 = -1

// DefaultCtrl returns control info with no barriers and a 1-cycle stall.
func DefaultCtrl() Ctrl { return Ctrl{Stall: 1, WrBar: NoBar, RdBar: NoBar} }

// Inst is one decoded SASS instruction.
type Inst struct {
	PC      uint64 // byte offset within the kernel
	Pred    Pred   // guard predicate; PT = unconditional
	PredNeg bool   // guard is @!Pn
	Op      Opcode
	Mods    []string  // dot modifiers in order, e.g. ["E","128","SYS"]
	Dst     []Operand // destinations (registers and/or predicates)
	Src     []Operand // sources
	Ctrl    Ctrl
	Line    int    // source line (0 = unknown)
	File    string // source file name ("" = kernel's primary file)
	Target  uint64 // branch target PC (OpBRA)
}

// HasMod reports whether the instruction carries the given dot modifier.
func (in *Inst) HasMod(m string) bool {
	for _, s := range in.Mods {
		if s == m {
			return true
		}
	}
	return false
}

// Mnemonic returns the full dotted mnemonic, e.g. "LDG.E.128.SYS".
func (in *Inst) Mnemonic() string {
	if len(in.Mods) == 0 {
		return in.Op.String()
	}
	return in.Op.String() + "." + strings.Join(in.Mods, ".")
}

// WidthBytes returns the per-thread access width of a memory instruction
// in bytes: 4 by default, 8 with a ".64" modifier, 16 with ".128".
// Texture fetches return the texel size (4).
func (in *Inst) WidthBytes() int {
	switch {
	case in.HasMod("128"):
		return 16
	case in.HasMod("64"):
		return 8
	default:
		return 4
	}
}

// IsVectorized reports whether a global load/store uses a 64- or 128-bit
// access (the §4.1 optimization target).
func (in *Inst) IsVectorized() bool { return in.HasMod("64") || in.HasMod("128") }

// IsNC reports whether a global load is routed through the read-only
// (non-coherent / texture) data cache — the compiled form of
// const __restrict__ pointers (§4.5).
func (in *Inst) IsNC() bool { return in.HasMod("NC") || in.HasMod("CI") }

// MemOperand returns the memory operand of a load/store and true, or a zero
// Operand and false when the instruction has none.
func (in *Inst) MemOperand() (Operand, bool) {
	for _, o := range in.Dst {
		if o.Kind == OpdMem {
			return o, true
		}
	}
	for _, o := range in.Src {
		if o.Kind == OpdMem {
			return o, true
		}
	}
	return Operand{}, false
}

// regPairWidth returns how many consecutive registers an operand of this
// instruction occupies, given the instruction's width/type modifiers.
func (in *Inst) regPairWidth() int {
	n := in.WidthBytes() / 4
	if n < 1 {
		n = 1
	}
	return n
}

// DstRegs appends to out every architectural register written by the
// instruction, expanding register pairs/quads for wide operations, and
// returns the extended slice. RZ writes are skipped.
func (in *Inst) DstRegs(out []Reg) []Reg {
	wide := 1
	switch {
	case IsLoad(in.Op) || in.Op == OpATOM || in.Op == OpATOMS:
		wide = in.regPairWidth()
	case ClassOf(in.Op) == ClassFP64:
		wide = 2
	case in.Op == OpIMAD && in.HasMod("WIDE"):
		wide = 2
	case (in.Op == OpF2F || in.Op == OpI2F || in.Op == OpI2I) &&
		len(in.Mods) >= 1 && in.Mods[0] == "F64":
		wide = 2 // conversions name the destination type first: F2F.F64.F32
	}
	for _, o := range in.Dst {
		if o.Kind != OpdReg || o.Reg.IsZ() {
			continue
		}
		for i := 0; i < wide; i++ {
			out = append(out, o.Reg+Reg(i))
		}
	}
	return out
}

// SrcRegs appends to out every architectural register read by the
// instruction — including memory-operand base register pairs and the
// values stored by store instructions — and returns the extended slice.
// The guard predicate and predicate operands are not included.
func (in *Inst) SrcRegs(out []Reg) []Reg {
	addReg := func(r Reg, wide int) {
		if r.IsZ() {
			return
		}
		for i := 0; i < wide; i++ {
			out = append(out, r+Reg(i))
		}
	}
	srcWide := 1
	switch {
	case IsStore(in.Op) || in.Op == OpATOM || in.Op == OpATOMS || in.Op == OpRED:
		srcWide = in.regPairWidth()
	case ClassOf(in.Op) == ClassFP64:
		srcWide = 2
	case in.Op == OpF2F && len(in.Mods) >= 2 && in.Mods[0] == "F32" && in.Mods[1] == "F64":
		// F2F.F32.F64 narrows: source is a pair.
		srcWide = 2
	}
	isIMADWide := in.Op == OpIMAD && in.HasMod("WIDE")
	for i, o := range in.Src {
		switch o.Kind {
		case OpdReg:
			w := srcWide
			if isIMADWide {
				// IMAD.WIDE Rd, Ra, Rb, Rc: a and b are 32-bit, the
				// accumulator c (last source) is a 64-bit pair.
				if i == len(in.Src)-1 {
					w = 2
				} else {
					w = 1
				}
			}
			addReg(o.Reg, w)
		case OpdMem:
			addReg(o.Reg, 2) // 64-bit address pair
		}
	}
	// Memory destinations ([addr] of stores/atomics) read their base pair.
	for _, o := range in.Dst {
		if o.Kind == OpdMem {
			addReg(o.Reg, 2)
		}
	}
	return out
}

// DstPreds appends every predicate register written (ISETP/FSETP/DSETP).
func (in *Inst) DstPreds(out []Pred) []Pred {
	for _, o := range in.Dst {
		if o.Kind == OpdPred && o.Pred != PT {
			out = append(out, o.Pred)
		}
	}
	return out
}

// SrcPreds appends every predicate register read, including the guard.
func (in *Inst) SrcPreds(out []Pred) []Pred {
	if in.Pred != PT {
		out = append(out, in.Pred)
	}
	for _, o := range in.Src {
		if o.Kind == OpdPred && o.Pred != PT {
			out = append(out, o.Pred)
		}
	}
	return out
}

func (in *Inst) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "/*%04x*/ ", in.PC)
	if in.Pred != PT {
		if in.PredNeg {
			b.WriteString("@!")
		} else {
			b.WriteString("@")
		}
		b.WriteString(in.Pred.String())
		b.WriteString(" ")
	}
	b.WriteString(in.Mnemonic())
	n := 0
	writeOpd := func(o Operand) {
		if n == 0 {
			b.WriteString(" ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.String())
		n++
	}
	for _, o := range in.Dst {
		writeOpd(o)
	}
	for _, o := range in.Src {
		writeOpd(o)
	}
	if in.Op == OpBRA {
		if n == 0 {
			b.WriteString(" ")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "0x%x", in.Target)
	}
	b.WriteString(" ;")
	return b.String()
}
