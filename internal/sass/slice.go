package sass

import "sort"

// SliceStep is one instruction on a backward def-use slice.
type SliceStep struct {
	// Index is the instruction's position in Kernel.Insts.
	Index int
	// Depth is the number of def-use hops from the sliced instruction
	// (0 = the sliced instruction itself, 1 = the direct producers of
	// its source operands, ...).
	Depth int
	// Reg is the register whose definition pulled this instruction into
	// the slice (RZ for the root).
	Reg Reg
}

// BackwardSlice walks def-use chains backward from the instruction at
// index target: the instruction itself, the producers of its source
// registers, their producers, and so on, up to maxDepth hops and
// maxInsts instructions. This is the LEO-style causal walk from a
// high-stall PC to the instruction(s) that actually caused the stall —
// a long-scoreboard stall surfaces at the consumer, but the cause is
// the load that defined the awaited register, and behind that the
// address arithmetic feeding the load.
//
// Reaching definitions are program-order (DefUse.LastDefBefore). A use
// whose only definitions come later in program order is loop-carried:
// the walk then takes the last definition in the program, which in a
// natural loop is the back-edge reaching definition. Predicate
// dependencies are not followed — the slice explains dataflow, not
// control.
//
// Every returned instruction is on a def-use path to target; the slice
// is returned in program order (the root included). Depth and the
// pulling register are reported per step so callers can render the
// chain.
func (du *DefUse) BackwardSlice(target, maxDepth, maxInsts int) []SliceStep {
	k := du.Kernel
	if target < 0 || target >= len(k.Insts) {
		return nil
	}
	if maxDepth <= 0 {
		maxDepth = 4
	}
	if maxInsts <= 0 {
		maxInsts = 12
	}
	type item struct {
		idx   int
		depth int
		reg   Reg
	}
	best := map[int]item{target: {target, 0, RZ}}
	queue := []item{{target, 0, RZ}}
	var scratch [8]Reg
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur.depth >= maxDepth || len(best) >= maxInsts {
			continue
		}
		in := &k.Insts[cur.idx]
		for _, r := range in.SrcRegs(scratch[:0]) {
			if r == RZ {
				continue
			}
			def := du.LastDefBefore(r, cur.idx)
			if def < 0 {
				// Loop-carried: the only definitions are later in program
				// order; the last one is the back-edge reaching def. A
				// register with no definitions at all is a kernel input.
				if defs := du.Defs[r]; len(defs) > 0 {
					def = defs[len(defs)-1]
				}
			}
			if def < 0 || def == cur.idx {
				continue
			}
			if _, seen := best[def]; seen {
				continue
			}
			if len(best) >= maxInsts {
				break
			}
			st := item{def, cur.depth + 1, r}
			best[def] = st
			queue = append(queue, st)
		}
	}
	out := make([]SliceStep, 0, len(best))
	for _, st := range best {
		out = append(out, SliceStep{Index: st.idx, Depth: st.depth, Reg: st.reg})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
