package sass

import (
	"testing"
)

// loopKernel builds a kernel with a counted loop:
//
//	i = 0
//	loop:  body (load, fma) ; i++ ; if i < n goto loop
//	exit
func loopKernel() *Kernel {
	k := &Kernel{Name: "_Zloop", Arch: "sm_70", NumRegs: 16, SourceFile: "l.cu"}
	ctrl := DefaultCtrl()
	k.Insts = []Inst{
		/* 0 */ {Op: OpMOV, Dst: []Operand{R(0)}, Src: []Operand{Imm(0)}, Ctrl: ctrl, Line: 1},
		/* 1 */ {Op: OpMOV, Dst: []Operand{R(6)}, Src: []Operand{Imm(0)}, Ctrl: ctrl, Line: 1},
		// loop header/body:
		/* 2 */ {Op: OpLDG, Mods: []string{"E", "SYS"}, Dst: []Operand{R(4)}, Src: []Operand{Mem(2, 0)}, Ctrl: ctrl, Line: 2},
		/* 3 */ {Op: OpFFMA, Dst: []Operand{R(6)}, Src: []Operand{R(4), R(4), R(6)}, Ctrl: ctrl, Line: 3},
		/* 4 */ {Op: OpIADD3, Dst: []Operand{R(0)}, Src: []Operand{R(0), Imm(1), R(Reg(255))}, Ctrl: ctrl, Line: 4},
		/* 5 */ {Op: OpISETP, Mods: []string{"LT", "AND"}, Dst: []Operand{P(0), P(PT)},
			Src: []Operand{R(0), Const(0, 0x160), P(PT)}, Ctrl: ctrl, Line: 4},
		/* 6 */ {Op: OpBRA, Pred: 0, Target: 2 * InstBytes, Ctrl: ctrl, Line: 4},
		/* 7 */ {Op: OpSTG, Mods: []string{"E", "SYS"}, Dst: []Operand{Mem(8, 0)}, Src: []Operand{R(6)}, Ctrl: ctrl, Line: 5},
		/* 8 */ {Op: OpEXIT, Ctrl: ctrl, Line: 6},
	}
	for i := range k.Insts {
		if k.Insts[i].Pred == 0 && k.Insts[i].Op != OpBRA {
			k.Insts[i].Pred = PT
		}
	}
	k.RenumberPCs()
	return k
}

// diamondKernel builds an if/else diamond:
//
//	isetp ; @!P0 bra else ; then: ... bra join ; else: ... ; join: exit
func diamondKernel() *Kernel {
	k := &Kernel{Name: "_Zdiamond", Arch: "sm_70", NumRegs: 16, SourceFile: "d.cu"}
	ctrl := DefaultCtrl()
	k.Insts = []Inst{
		/* 0 */ {Op: OpISETP, Mods: []string{"LT", "AND"}, Dst: []Operand{P(0), P(PT)},
			Src: []Operand{R(0), Imm(10), P(PT)}, Ctrl: ctrl, Line: 1},
		/* 1 */ {Op: OpBRA, Pred: 0, PredNeg: true, Target: 4 * InstBytes, Ctrl: ctrl, Line: 1},
		/* 2 */ {Op: OpMOV, Dst: []Operand{R(1)}, Src: []Operand{Imm(1)}, Ctrl: ctrl, Line: 2},
		/* 3 */ {Op: OpBRA, Target: 5 * InstBytes, Ctrl: ctrl, Line: 2},
		/* 4 */ {Op: OpMOV, Dst: []Operand{R(1)}, Src: []Operand{Imm(2)}, Ctrl: ctrl, Line: 3},
		/* 5 */ {Op: OpEXIT, Ctrl: ctrl, Line: 4},
	}
	for i := range k.Insts {
		if k.Insts[i].Pred == 0 && k.Insts[i].Op != OpBRA {
			k.Insts[i].Pred = PT
		}
	}
	// Instruction 1 is a conditional branch and must keep Pred=P0.
	k.Insts[1].Pred = 0
	k.RenumberPCs()
	return k
}

func TestCFGLoop(t *testing.T) {
	k := loopKernel()
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatalf("BuildCFG: %v", err)
	}
	// Blocks: [0,2) preheader, [2,7) loop, [7,9) tail.
	if len(cfg.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3: %+v", len(cfg.Blocks), cfg.Blocks)
	}
	if len(cfg.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(cfg.Loops))
	}
	loop := cfg.Loops[0]
	if cfg.Blocks[loop.Header].Start != 2 {
		t.Errorf("loop header starts at inst %d, want 2", cfg.Blocks[loop.Header].Start)
	}
	for i := 2; i <= 6; i++ {
		if !cfg.InLoop(i) {
			t.Errorf("inst %d should be in loop", i)
		}
	}
	for _, i := range []int{0, 1, 7, 8} {
		if cfg.InLoop(i) {
			t.Errorf("inst %d should not be in loop", i)
		}
	}
	if d := cfg.LoopDepth(3); d != 1 {
		t.Errorf("LoopDepth(3) = %d, want 1", d)
	}
}

func TestCFGDiamondPostDominators(t *testing.T) {
	k := diamondKernel()
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatalf("BuildCFG: %v", err)
	}
	if len(cfg.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(cfg.Blocks))
	}
	// The branch at instruction 1 reconverges at the join block (inst 5).
	pc, ok := cfg.IPDomPC(1)
	if !ok {
		t.Fatal("IPDomPC: branch block has no post-dominator")
	}
	if pc != 5*InstBytes {
		t.Errorf("IPDomPC = %#x, want %#x", pc, uint64(5*InstBytes))
	}
	if len(cfg.Loops) != 0 {
		t.Errorf("diamond should have no loops, got %d", len(cfg.Loops))
	}
	// Straight-line blocks know their containing block.
	if cfg.BlockOf(0) != 0 || cfg.BlockOf(5) != 3 {
		t.Errorf("BlockOf wrong: %d %d", cfg.BlockOf(0), cfg.BlockOf(5))
	}
}

func TestCFGBadBranch(t *testing.T) {
	k := loopKernel()
	k.Insts[6].Target = 1 << 20
	if _, err := BuildCFG(k); err == nil {
		t.Error("BuildCFG accepted out-of-range branch target")
	}
}

func TestLivenessLoop(t *testing.T) {
	k := loopKernel()
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatalf("BuildCFG: %v", err)
	}
	lv := ComputeLiveness(cfg)

	// R6 (the accumulator) is live across the loop: after the FFMA at
	// inst 3 it must be live (used by next iteration and the STG).
	if !lv.LiveAt(6, 3) {
		t.Error("accumulator R6 should be live after inst 3")
	}
	// The loaded value R4 dies after its single use in inst 3.
	if lv.LiveAt(4, 3) {
		t.Error("R4 should be dead after its last use at inst 3")
	}
	// The address pair R2,R3 is live inside the loop (used by the LDG each
	// iteration via the back edge).
	if !lv.LiveAt(2, 3) || !lv.LiveAt(3, 3) {
		t.Error("address pair R2,R3 should be live inside the loop")
	}
	// Pressure is positive inside the loop and bounded by NumRegs.
	max, at := lv.MaxPressure()
	if max <= 0 || max > k.NumRegs {
		t.Errorf("MaxPressure = %d at %d", max, at)
	}
	// The LDG defines a new value: it should report extra registers > 0
	// (R4 becomes live).
	if lv.ExtraRegs(2) < 1 {
		t.Errorf("ExtraRegs(LDG) = %d, want >= 1", lv.ExtraRegs(2))
	}
}

func TestDefUse(t *testing.T) {
	k := loopKernel()
	du := ComputeDefUse(k)

	// R6 is defined at insts 1 (MOV) and 3 (FFMA).
	if len(du.Defs[6]) != 2 {
		t.Errorf("Defs[R6] = %v, want 2 defs", du.Defs[6])
	}
	// Last def of R6 before the STG at inst 7 is the FFMA at inst 3.
	if got := du.LastDefBefore(6, 7); got != 3 {
		t.Errorf("LastDefBefore(R6, 7) = %d, want 3", got)
	}
	if got := du.LastDefBefore(6, 2); got != 1 {
		t.Errorf("LastDefBefore(R6, 2) = %d, want 1", got)
	}
	if got := du.LastDefBefore(99, 5); got != -1 {
		t.Errorf("LastDefBefore(unwritten reg) = %d, want -1", got)
	}

	// R2 (load base) is never written: read-only.
	if !du.IsReadOnly(2) {
		t.Error("R2 should be read-only")
	}
	// R6 is written twice: not read-only.
	if du.IsReadOnly(6) {
		t.Error("R6 should not be read-only")
	}

	// Pointer R2 is only loaded through; pointer R8 is stored through.
	if du.PointerStoredThrough(2) {
		t.Error("R2 pair should not be stored through")
	}
	if !du.PointerStoredThrough(8) {
		t.Error("R8 pair should be stored through")
	}

	// R4 feeds one arithmetic instruction (the FFMA reads it twice, but
	// instruction-wise it is one arith user; ArithUseCount counts reads).
	if got := du.ArithUseCount(4); got != 2 {
		t.Errorf("ArithUseCount(R4) = %d, want 2 (two reads by FFMA)", got)
	}
	if du.UseCount(4) != 2 {
		t.Errorf("UseCount(R4) = %d", du.UseCount(4))
	}
	if du.ArithUseCount(RZ) != 0 || du.UseCount(RZ) != 0 || !du.IsReadOnly(RZ) {
		t.Error("RZ must be inert in def-use queries")
	}
}
