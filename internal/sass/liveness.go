package sass

// Liveness holds per-instruction register liveness information. The paper
// reports "live register pressure of an instruction" (§3.2) and "the number
// of additional registers needed by each SASS instruction" (§4.1); both are
// computed here from a standard backward dataflow over the CFG.
type Liveness struct {
	cfg *CFG

	// liveOut[i] is the set of registers live immediately after
	// instruction i, as a bitset over R0..R254.
	liveOut []regSet
	// pressure[i] = |live-out(i)|: the live register pressure at i.
	pressure []int
	// extra[i] = max(0, |live-out(i)| - |live-in(i)|): registers newly
	// made live by instruction i.
	extra []int
}

const regSetWords = (NumArchRegs + 63) / 64

type regSet [regSetWords]uint64

func (s *regSet) add(r Reg) {
	if r == RZ {
		return
	}
	s[r/64] |= 1 << (r % 64)
}

func (s *regSet) remove(r Reg) {
	if r == RZ {
		return
	}
	s[r/64] &^= 1 << (r % 64)
}

func (s *regSet) has(r Reg) bool {
	if r == RZ {
		return false
	}
	return s[r/64]&(1<<(r%64)) != 0
}

func (s *regSet) union(o regSet) (changed bool) {
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

func (s *regSet) count() int {
	n := 0
	for _, w := range s {
		n += popcount64(w)
	}
	return n
}

func popcount64(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

// ComputeLiveness runs backward liveness over the kernel's CFG.
func ComputeLiveness(cfg *CFG) *Liveness {
	k := cfg.Kernel
	n := len(k.Insts)
	lv := &Liveness{
		cfg:      cfg,
		liveOut:  make([]regSet, n),
		pressure: make([]int, n),
		extra:    make([]int, n),
	}

	// Per-block live-in sets, iterated to fixpoint.
	nb := len(cfg.Blocks)
	blockLiveIn := make([]regSet, nb)
	var scratch []Reg

	transfer := func(b *Block, liveOutEnd regSet, record bool) regSet {
		live := liveOutEnd
		for i := b.End - 1; i >= b.Start; i-- {
			in := &k.Insts[i]
			if record {
				lv.liveOut[i] = live
				lv.pressure[i] = live.count()
			}
			before := live
			for _, r := range in.DstRegs(scratch[:0]) {
				live.remove(r)
			}
			for _, r := range in.SrcRegs(scratch[:0]) {
				live.add(r)
			}
			if record {
				outN := before.count()
				inN := live.count()
				if d := outN - inN; d > 0 {
					lv.extra[i] = d
				}
			}
		}
		return live
	}

	changed := true
	for changed {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			b := &cfg.Blocks[bi]
			var out regSet
			for _, s := range b.Succs {
				out.union(blockLiveIn[s])
			}
			in := transfer(b, out, false)
			if blockLiveIn[bi].union(in) {
				changed = true
			}
		}
	}
	for bi := range cfg.Blocks {
		b := &cfg.Blocks[bi]
		var out regSet
		for _, s := range b.Succs {
			out.union(blockLiveIn[s])
		}
		transfer(b, out, true)
	}
	return lv
}

// PressureAt returns the live register pressure immediately after
// instruction index i.
func (lv *Liveness) PressureAt(i int) int { return lv.pressure[i] }

// ExtraRegs returns how many additional registers instruction i makes
// live (the §4.1 per-instruction register-pressure contribution).
func (lv *Liveness) ExtraRegs(i int) int { return lv.extra[i] }

// MaxPressure returns the maximum live register pressure in the kernel
// and the instruction index where it occurs.
func (lv *Liveness) MaxPressure() (max, at int) {
	for i, p := range lv.pressure {
		if p > max {
			max, at = p, i
		}
	}
	return max, at
}

// LiveAt reports whether register r is live immediately after
// instruction index i.
func (lv *Liveness) LiveAt(r Reg, i int) bool { return lv.liveOut[i].has(r) }
