package sass

import "testing"

// sliceKernel builds a small straight-line kernel with a clear producer
// chain feeding a stalled consumer:
//
//	0: IMAD   R2, R0, R1, RZ     ; address arithmetic
//	1: IADD3  R4, R2, 0x10, RZ   ; address arithmetic
//	2: LDG.E  R6, [R4]           ; the true producer (long-scoreboard source)
//	3: MOV    R10, 0x7           ; unrelated
//	4: FADD   R8, R6, R6         ; the stalled consumer
func sliceKernel() *Kernel {
	k := &Kernel{Name: "slice_test", Arch: "sm_70"}
	k.Insts = []Inst{
		{PC: 0, Pred: PT, Op: OpIMAD, Dst: []Operand{R(2)}, Src: []Operand{R(0), R(1), R(RZ)}, Ctrl: DefaultCtrl(), Line: 10},
		{PC: 16, Pred: PT, Op: OpIADD3, Dst: []Operand{R(4)}, Src: []Operand{R(2), Imm(0x10), R(RZ)}, Ctrl: DefaultCtrl(), Line: 11},
		{PC: 32, Pred: PT, Op: OpLDG, Mods: []string{"E"}, Dst: []Operand{R(6)}, Src: []Operand{Mem(4, 0)}, Ctrl: DefaultCtrl(), Line: 12},
		{PC: 48, Pred: PT, Op: OpMOV, Dst: []Operand{R(10)}, Src: []Operand{Imm(7)}, Ctrl: DefaultCtrl(), Line: 13},
		{PC: 64, Pred: PT, Op: OpFADD, Dst: []Operand{R(8)}, Src: []Operand{R(6), R(6)}, Ctrl: DefaultCtrl(), Line: 14},
	}
	return k
}

func TestBackwardSliceChain(t *testing.T) {
	k := sliceKernel()
	du := ComputeDefUse(k)

	steps := du.BackwardSlice(4, 0, 0)
	want := map[int]int{0: 3, 1: 2, 2: 1, 4: 0} // index -> depth
	if len(steps) != len(want) {
		t.Fatalf("slice has %d steps %v, want %d", len(steps), steps, len(want))
	}
	for i, st := range steps {
		d, ok := want[st.Index]
		if !ok {
			t.Errorf("step %d: unexpected instruction %d in slice", i, st.Index)
			continue
		}
		if st.Depth != d {
			t.Errorf("instruction %d at depth %d, want %d", st.Index, st.Depth, d)
		}
		if i > 0 && steps[i-1].Index >= st.Index {
			t.Errorf("slice not in program order: %v", steps)
		}
	}
	// The unrelated MOV (index 3) must never be pulled in.
	for _, st := range steps {
		if st.Index == 3 {
			t.Error("unrelated instruction 3 in slice")
		}
	}
}

func TestBackwardSliceDepthAndSizeBounds(t *testing.T) {
	k := sliceKernel()
	du := ComputeDefUse(k)

	// Depth 1: only the consumer and the load.
	steps := du.BackwardSlice(4, 1, 0)
	if len(steps) != 2 || steps[0].Index != 2 || steps[1].Index != 4 {
		t.Fatalf("depth-1 slice = %v, want [load consumer]", steps)
	}
	// Size bound 2: never more than two instructions, root always present.
	steps = du.BackwardSlice(4, 0, 2)
	if len(steps) > 2 {
		t.Fatalf("size-bounded slice has %d steps: %v", len(steps), steps)
	}
	foundRoot := false
	for _, st := range steps {
		if st.Index == 4 {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Error("size-bounded slice dropped the root")
	}
}

func TestBackwardSliceLoopCarried(t *testing.T) {
	// A natural loop where the accumulator's only def is "later" in
	// program order relative to the loop header use:
	//
	//	0: MOV   R2, 0x0           ; init (outside the chain: R2 redefined)
	//	1: FADD  R2, R2, R4        ; loop body: R2 += R4 (self-carried)
	//	2: FMUL  R6, R2, R2        ; consumer inside loop
	k := &Kernel{Name: "loop", Arch: "sm_70"}
	k.Insts = []Inst{
		{PC: 0, Pred: PT, Op: OpMOV, Dst: []Operand{R(2)}, Src: []Operand{Imm(0)}, Ctrl: DefaultCtrl()},
		{PC: 16, Pred: PT, Op: OpFADD, Dst: []Operand{R(2)}, Src: []Operand{R(2), R(4)}, Ctrl: DefaultCtrl()},
		{PC: 32, Pred: PT, Op: OpFMUL, Dst: []Operand{R(6)}, Src: []Operand{R(2), R(2)}, Ctrl: DefaultCtrl()},
	}
	du := ComputeDefUse(k)

	steps := du.BackwardSlice(2, 0, 0)
	got := map[int]bool{}
	for _, st := range steps {
		got[st.Index] = true
	}
	// FMUL's R2 reaches the FADD at 1; the FADD's own R2 source reaches
	// the MOV at 0 (program order). All three are on the def-use path.
	for _, idx := range []int{0, 1, 2} {
		if !got[idx] {
			t.Errorf("loop slice missing instruction %d: %v", idx, steps)
		}
	}

	// Slicing the FADD itself: its R2 source has no earlier def besides
	// the MOV, so LastDefBefore finds it; but a use *before* any def in
	// program order must fall back to the last def (back-edge).
	k2 := &Kernel{Name: "backedge", Arch: "sm_70"}
	k2.Insts = []Inst{
		// 0: FMUL R6, R2, R2 — uses R2 before any def (loop rotated)
		{PC: 0, Pred: PT, Op: OpFMUL, Dst: []Operand{R(6)}, Src: []Operand{R(2), R(2)}, Ctrl: DefaultCtrl()},
		// 1: FADD R2, R6, R4 — the back-edge def of R2
		{PC: 16, Pred: PT, Op: OpFADD, Dst: []Operand{R(2)}, Src: []Operand{R(6), R(4)}, Ctrl: DefaultCtrl()},
	}
	du2 := ComputeDefUse(k2)
	steps2 := du2.BackwardSlice(0, 1, 0)
	found := false
	for _, st := range steps2 {
		if st.Index == 1 && st.Depth == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("back-edge def not found: %v", steps2)
	}
}

func TestBackwardSliceInvalidTarget(t *testing.T) {
	du := ComputeDefUse(sliceKernel())
	if s := du.BackwardSlice(-1, 0, 0); s != nil {
		t.Errorf("negative target returned %v", s)
	}
	if s := du.BackwardSlice(99, 0, 0); s != nil {
		t.Errorf("out-of-range target returned %v", s)
	}
}
