package sass

import (
	"fmt"
	"sort"
)

// Kernel is a disassembled GPU kernel: the unit of analysis for GPUscout.
type Kernel struct {
	Name string // mangled kernel name, e.g. "_Z14benchmark_funcfPf"
	Arch string // e.g. "sm_70"

	Insts []Inst

	// Resource usage, as recorded in the cubin.
	NumRegs     int // architectural registers per thread
	SharedBytes int // static shared memory per block
	LocalBytes  int // local memory per thread (spill slots live here)
	ConstBytes  int // kernel parameter area size in constant bank 0

	// Source mapping. SourceFile names the primary .cu file; Source holds
	// its text (1-based lines) when available so reports can quote it.
	SourceFile string
	Source     []string
}

// InstAt returns the instruction at the given PC, or nil.
func (k *Kernel) InstAt(pc uint64) *Inst {
	i := int(pc / InstBytes)
	if i < 0 || i >= len(k.Insts) || k.Insts[i].PC != pc {
		// Fall back to a scan in case PCs are not dense.
		for j := range k.Insts {
			if k.Insts[j].PC == pc {
				return &k.Insts[j]
			}
		}
		return nil
	}
	return &k.Insts[i]
}

// LineOf returns the source line attributed to pc (0 if unknown).
func (k *Kernel) LineOf(pc uint64) int {
	if in := k.InstAt(pc); in != nil {
		return in.Line
	}
	return 0
}

// SourceLine returns the quoted source text for a 1-based line number,
// or "" when the source is not embedded.
func (k *Kernel) SourceLine(line int) string {
	if line <= 0 || line > len(k.Source) {
		return ""
	}
	return k.Source[line-1]
}

// PCsForLine returns the PCs of all instructions attributed to line,
// in program order.
func (k *Kernel) PCsForLine(line int) []uint64 {
	var pcs []uint64
	for i := range k.Insts {
		if k.Insts[i].Line == line {
			pcs = append(pcs, k.Insts[i].PC)
		}
	}
	return pcs
}

// Lines returns the sorted set of source lines with attributed instructions.
func (k *Kernel) Lines() []int {
	seen := map[int]bool{}
	for i := range k.Insts {
		if l := k.Insts[i].Line; l > 0 {
			seen[l] = true
		}
	}
	lines := make([]int, 0, len(seen))
	for l := range seen {
		lines = append(lines, l)
	}
	sort.Ints(lines)
	return lines
}

// RenumberPCs assigns dense PCs (i*InstBytes) to all instructions and
// retargets branches that referred to instruction indices. It must be
// called by builders after instruction insertion/removal; Target fields
// are assumed to already hold final PCs and are left untouched.
func (k *Kernel) RenumberPCs() {
	for i := range k.Insts {
		k.Insts[i].PC = uint64(i) * InstBytes
	}
}

// Validate performs structural sanity checks and returns the first
// problem found, or nil.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernel has no name")
	}
	if len(k.Insts) == 0 {
		return fmt.Errorf("kernel %s has no instructions", k.Name)
	}
	maxPC := uint64(len(k.Insts)) * InstBytes
	sawExit := false
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.PC != uint64(i)*InstBytes {
			return fmt.Errorf("%s: instruction %d has PC %#x, want %#x", k.Name, i, in.PC, uint64(i)*InstBytes)
		}
		if in.Op == OpInvalid || in.Op >= opMax {
			return fmt.Errorf("%s: instruction %d has invalid opcode", k.Name, i)
		}
		if in.Op == OpBRA {
			if in.Target >= maxPC || in.Target%InstBytes != 0 {
				return fmt.Errorf("%s: branch at %#x targets invalid PC %#x", k.Name, in.PC, in.Target)
			}
		}
		if in.Op == OpEXIT {
			sawExit = true
		}
		var regs []Reg
		for _, r := range in.DstRegs(regs[:0]) {
			if int(r) >= k.NumRegs && k.NumRegs > 0 && r != RZ {
				return fmt.Errorf("%s: instruction at %#x writes R%d beyond NumRegs=%d", k.Name, in.PC, r, k.NumRegs)
			}
		}
	}
	if !sawExit {
		return fmt.Errorf("kernel %s has no EXIT instruction", k.Name)
	}
	return nil
}

// CountOpcodes tallies instructions by base opcode.
func (k *Kernel) CountOpcodes() map[Opcode]int {
	m := make(map[Opcode]int)
	for i := range k.Insts {
		m[k.Insts[i].Op]++
	}
	return m
}
