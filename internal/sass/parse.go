package sass

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a parse failure with its 1-based text line number.
type ParseError struct {
	TextLine int
	Msg      string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sass: line %d: %s", e.TextLine, e.Msg)
}

// numDsts returns how many leading operands of the opcode are destinations.
func numDsts(op Opcode) int {
	switch op {
	case OpSTG, OpSTS, OpSTL, OpRED, OpLDGSTS:
		return 1 // the memory operand (LDGSTS: the shared destination)
	case OpATOM, OpATOMS:
		return 2 // return register + memory operand
	case OpISETP, OpFSETP, OpDSETP:
		return 2 // predicate pair
	case OpBRA, OpEXIT, OpBAR, OpNOP, OpRET, OpMEMBAR:
		return 0
	default:
		return 1
	}
}

// Parse reads the text format produced by Print and reconstructs the
// kernel. It is the GPUscout "Configuration" stage's disassembler
// ingestion path: the static analysis never needs the CUDA source.
func Parse(text string) (*Kernel, error) {
	k := &Kernel{}
	curLine, curFile := 0, ""
	sawHeader := false
	for ln, raw := range strings.Split(text, "\n") {
		textLine := ln + 1
		s := strings.TrimSpace(raw)
		if s == "" {
			continue
		}
		switch {
		case strings.HasPrefix(s, ".kernel "):
			if err := parseHeader(k, s); err != nil {
				return nil, &ParseError{textLine, err.Error()}
			}
			sawHeader = true
		case strings.HasPrefix(s, ".file "):
			f, err := strconv.Unquote(strings.TrimSpace(strings.TrimPrefix(s, ".file")))
			if err != nil {
				return nil, &ParseError{textLine, "bad .file directive: " + err.Error()}
			}
			k.SourceFile = f
		case strings.HasPrefix(s, "//## File "):
			file, line, err := parseLineMarker(s)
			if err != nil {
				return nil, &ParseError{textLine, err.Error()}
			}
			curFile, curLine = file, line
		case strings.HasPrefix(s, "//"):
			// Plain comment.
		case strings.HasPrefix(s, "/*"):
			in, err := parseInst(s)
			if err != nil {
				return nil, &ParseError{textLine, err.Error()}
			}
			in.Line = curLine
			if curFile != k.SourceFile {
				in.File = curFile
			}
			k.Insts = append(k.Insts, in)
		default:
			return nil, &ParseError{textLine, fmt.Sprintf("unrecognized line %q", s)}
		}
	}
	if !sawHeader {
		return nil, &ParseError{0, "missing .kernel header"}
	}
	return k, nil
}

func parseHeader(k *Kernel, s string) error {
	fields := strings.Fields(s)
	if len(fields) < 3 {
		return fmt.Errorf("malformed .kernel header %q", s)
	}
	k.Name = fields[1]
	k.Arch = fields[2]
	for _, f := range fields[3:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("malformed header field %q", f)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("header field %q: %v", f, err)
		}
		switch key {
		case "regs":
			k.NumRegs = n
		case "shared":
			k.SharedBytes = n
		case "local":
			k.LocalBytes = n
		case "const":
			k.ConstBytes = n
		default:
			return fmt.Errorf("unknown header field %q", key)
		}
	}
	return nil
}

func parseLineMarker(s string) (file string, line int, err error) {
	// //## File "sgemm.cu", line 12
	rest := strings.TrimPrefix(s, "//## File ")
	end := strings.LastIndex(rest, `", line `)
	// end must fall after the opening quote, not overlap it (`", line 0`).
	if !strings.HasPrefix(rest, `"`) || end < 1 {
		return "", 0, fmt.Errorf("malformed line marker %q", s)
	}
	file = rest[1:end]
	line, err = strconv.Atoi(strings.TrimSpace(rest[end+len(`", line `):]))
	if err != nil {
		return "", 0, fmt.Errorf("malformed line marker %q: %v", s, err)
	}
	return file, line, nil
}

func parseInst(s string) (Inst, error) {
	in := Inst{Pred: PT, Ctrl: DefaultCtrl()}

	// /*PC*/ prefix.
	if !strings.HasPrefix(s, "/*") {
		return in, fmt.Errorf("missing PC comment in %q", s)
	}
	// Search after the opening "/*": in a degenerate "/*/" the closing
	// marker would otherwise match overlapping the opener.
	close := strings.Index(s[2:], "*/")
	if close < 0 {
		return in, fmt.Errorf("unterminated PC comment in %q", s)
	}
	close += 2
	pc, err := strconv.ParseUint(strings.TrimSpace(s[2:close]), 16, 64)
	if err != nil {
		return in, fmt.Errorf("bad PC in %q: %v", s, err)
	}
	in.PC = pc
	s = strings.TrimSpace(s[close+2:])

	// Control info suffix after ';'.
	body, ctrl, found := strings.Cut(s, ";")
	if !found {
		return in, fmt.Errorf("missing ';' in %q", s)
	}
	ctrl = strings.TrimSpace(ctrl)
	if ctrl != "" {
		c, err := parseCtrl(ctrl)
		if err != nil {
			return in, err
		}
		in.Ctrl = c
	}
	body = strings.TrimSpace(body)

	// Guard predicate.
	if strings.HasPrefix(body, "@") {
		guard, rest, ok := strings.Cut(body, " ")
		if !ok {
			return in, fmt.Errorf("guarded instruction with no opcode: %q", body)
		}
		g := strings.TrimPrefix(guard, "@")
		if strings.HasPrefix(g, "!") {
			in.PredNeg = true
			g = g[1:]
		}
		p, err := parsePredName(g)
		if err != nil {
			return in, err
		}
		in.Pred = p
		body = strings.TrimSpace(rest)
	}

	// Mnemonic.
	mnem, operands, _ := strings.Cut(body, " ")
	parts := strings.Split(mnem, ".")
	op, ok := OpcodeByName(parts[0])
	if !ok {
		return in, fmt.Errorf("unknown opcode %q", parts[0])
	}
	in.Op = op
	if len(parts) > 1 {
		in.Mods = parts[1:]
	}

	// Operands.
	operands = strings.TrimSpace(operands)
	var opds []Operand
	if operands != "" {
		for _, tok := range splitOperands(operands) {
			o, err := parseOperand(tok)
			if err != nil {
				return in, err
			}
			opds = append(opds, o)
		}
	}
	if op == OpBRA {
		if len(opds) == 0 || opds[len(opds)-1].Kind != OpdImm {
			return in, fmt.Errorf("BRA without target in %q", body)
		}
		in.Target = uint64(opds[len(opds)-1].Imm)
		opds = opds[:len(opds)-1]
	}
	nd := numDsts(op)
	if nd > len(opds) {
		nd = len(opds)
	}
	if nd > 0 {
		in.Dst = opds[:nd:nd]
	}
	if nd < len(opds) {
		in.Src = opds[nd:]
	}
	return in, nil
}

func splitOperands(s string) []string {
	// Commas never nest in our operand grammar except inside c[..][..]
	// (none) — a flat split suffices.
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parsePredName(s string) (Pred, error) {
	if s == "PT" {
		return PT, nil
	}
	if strings.HasPrefix(s, "P") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumPreds {
			return Pred(n), nil
		}
	}
	return PT, fmt.Errorf("bad predicate %q", s)
}

func parseRegName(s string) (Reg, error) {
	if s == "RZ" {
		return RZ, nil
	}
	if strings.HasPrefix(s, "R") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumArchRegs {
			return Reg(n), nil
		}
	}
	return RZ, fmt.Errorf("bad register %q", s)
}

func parseHexImm(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q: %v", s, err)
	}
	iv := int64(v)
	if neg {
		iv = -iv
	}
	return iv, nil
}

func parseOperand(tok string) (Operand, error) {
	switch {
	case tok == "":
		return Operand{}, fmt.Errorf("empty operand")
	case strings.HasPrefix(tok, "["):
		if !strings.HasSuffix(tok, "]") {
			return Operand{}, fmt.Errorf("unterminated memory operand %q", tok)
		}
		inner := tok[1 : len(tok)-1]
		base, off, hasOff := strings.Cut(inner, "+")
		r, err := parseRegName(strings.TrimSpace(base))
		if err != nil {
			return Operand{}, err
		}
		var imm int64
		if hasOff {
			imm, err = parseHexImm(strings.TrimSpace(off))
			if err != nil {
				return Operand{}, err
			}
		}
		return Mem(r, imm), nil
	case strings.HasPrefix(tok, "c["):
		// c[0xB][0xOFF]
		var bank, off int64
		rest := tok[2:]
		end := strings.Index(rest, "]")
		if end < 0 {
			return Operand{}, fmt.Errorf("bad constant operand %q", tok)
		}
		bank, err := parseHexImm(rest[:end])
		if err != nil {
			return Operand{}, err
		}
		rest = rest[end+1:]
		if !strings.HasPrefix(rest, "[") || !strings.HasSuffix(rest, "]") {
			return Operand{}, fmt.Errorf("bad constant operand %q", tok)
		}
		off, err = parseHexImm(rest[1 : len(rest)-1])
		if err != nil {
			return Operand{}, err
		}
		return Const(int(bank), off), nil
	case strings.HasPrefix(tok, "SR_"):
		sr, ok := SpecialRegByName(tok)
		if !ok {
			return Operand{}, fmt.Errorf("unknown special register %q", tok)
		}
		return SR(sr), nil
	case tok == "PT" || tok == "!PT" || (len(tok) >= 2 && (tok[0] == 'P' || strings.HasPrefix(tok, "!P")) && !strings.HasPrefix(tok, "PR")):
		neg := strings.HasPrefix(tok, "!")
		p, err := parsePredName(strings.TrimPrefix(tok, "!"))
		if err != nil {
			return Operand{}, err
		}
		o := P(p)
		o.Neg = neg
		return o, nil
	case tok == "RZ" || strings.HasPrefix(tok, "R") || strings.HasPrefix(tok, "-R"):
		neg := strings.HasPrefix(tok, "-")
		r, err := parseRegName(strings.TrimPrefix(tok, "-"))
		if err != nil {
			return Operand{}, err
		}
		o := R(r)
		o.Neg = neg
		return o, nil
	default:
		imm, err := parseHexImm(tok)
		if err != nil {
			return Operand{}, err
		}
		return Imm(imm), nil
	}
}

func parseCtrl(s string) (Ctrl, error) {
	c := DefaultCtrl()
	if !strings.HasPrefix(s, "&") {
		return c, fmt.Errorf("malformed control info %q", s)
	}
	for _, f := range strings.Fields(strings.TrimPrefix(s, "&")) {
		if f == "Y" {
			c.Yield = true
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return c, fmt.Errorf("malformed control field %q", f)
		}
		switch key {
		case "wr", "rd":
			bar := NoBar
			if val != "-" {
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 || n > 5 {
					return c, fmt.Errorf("bad scoreboard slot %q", f)
				}
				bar = int8(n)
			}
			if key == "wr" {
				c.WrBar = bar
			} else {
				c.RdBar = bar
			}
		case "wt":
			v, err := parseHexImm(val)
			if err != nil || v < 0 || v > 0x3f {
				return c, fmt.Errorf("bad wait mask %q", f)
			}
			c.WaitMask = uint8(v)
		case "st":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 || n > 15 {
				return c, fmt.Errorf("bad stall count %q", f)
			}
			c.Stall = uint8(n)
		default:
			return c, fmt.Errorf("unknown control field %q", f)
		}
	}
	return c, nil
}
