package sass_test

import (
	"testing"

	"gpuscout/internal/sass"
	"gpuscout/internal/workloads"
)

// FuzzParseSASS feeds arbitrary text to the SASS parser, seeded with the
// canonical printed SASS of every registered workload. The parser must
// never panic, and anything it accepts must survive a print -> parse ->
// print round trip byte-identically (the printed form is the canonical
// fixed point; the first parse is allowed to normalize its input).
func FuzzParseSASS(f *testing.F) {
	for _, name := range workloads.Names() {
		w, err := workloads.Build(name, 0)
		if err != nil {
			f.Fatalf("build %s: %v", name, err)
		}
		f.Add(sass.Print(w.Kernel))
	}
	f.Add("")
	f.Add("garbage\n")
	f.Fuzz(func(t *testing.T, text string) {
		k, err := sass.Parse(text)
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		printed := sass.Print(k)
		k2, err := sass.Parse(printed)
		if err != nil {
			t.Fatalf("printed kernel does not re-parse: %v\n%s", err, printed)
		}
		if again := sass.Print(k2); again != printed {
			t.Fatalf("print not a fixed point:\n--- first\n%s\n--- second\n%s", printed, again)
		}
	})
}
