package sass

import (
	"fmt"
	"sort"
)

// Block is a basic block: a maximal straight-line instruction sequence.
type Block struct {
	ID    int
	Start int // index of first instruction in Kernel.Insts
	End   int // index one past the last instruction
	Succs []int
	Preds []int
}

// CFG is the control-flow graph of a kernel plus derived structure:
// dominators, immediate post-dominators (used by the simulator for branch
// reconvergence) and natural loops (used by detectors that treat in-loop
// bottlenecks as amplified, per §4.3/§4.4).
type CFG struct {
	Kernel *Kernel
	Blocks []Block

	blockOf []int // instruction index -> block ID

	idom  []int // immediate dominator per block (-1 for entry)
	ipdom []int // immediate post-dominator per block (-1 for exit)

	// loopDepth[i] is the number of natural loops containing instruction i.
	loopDepth []int
	// Loops lists each natural loop as (header block, body block set).
	Loops []Loop
}

// Loop is a natural loop identified from a back edge.
type Loop struct {
	Header int          // header block ID
	Blocks map[int]bool // all blocks in the loop, including the header
}

// BuildCFG constructs the control-flow graph and all derived analyses.
func BuildCFG(k *Kernel) (*CFG, error) {
	n := len(k.Insts)
	if n == 0 {
		return nil, fmt.Errorf("sass: cannot build CFG of empty kernel %q", k.Name)
	}

	// Leaders: entry, branch targets, and instructions after branches/exits.
	leader := make([]bool, n)
	leader[0] = true
	for i := range k.Insts {
		in := &k.Insts[i]
		switch in.Op {
		case OpBRA:
			t := int(in.Target / InstBytes)
			if t < 0 || t >= n {
				return nil, fmt.Errorf("sass: branch at %#x targets out-of-range PC %#x", in.PC, in.Target)
			}
			leader[t] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case OpEXIT, OpRET:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	cfg := &CFG{Kernel: k, blockOf: make([]int, n)}
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		id := len(cfg.Blocks)
		cfg.Blocks = append(cfg.Blocks, Block{ID: id, Start: i, End: j})
		for t := i; t < j; t++ {
			cfg.blockOf[t] = id
		}
		i = j
	}

	// Edges.
	for bi := range cfg.Blocks {
		b := &cfg.Blocks[bi]
		last := &k.Insts[b.End-1]
		addEdge := func(to int) {
			b.Succs = append(b.Succs, to)
			cfg.Blocks[to].Preds = append(cfg.Blocks[to].Preds, bi)
		}
		switch last.Op {
		case OpBRA:
			addEdge(cfg.blockOf[int(last.Target/InstBytes)])
			if last.Pred != PT && b.End < n {
				// Conditional branch falls through too.
				addEdge(cfg.blockOf[b.End])
			}
		case OpEXIT, OpRET:
			// No successors.
		default:
			if b.End < n {
				addEdge(cfg.blockOf[b.End])
			}
		}
	}

	cfg.computeDominators()
	cfg.computePostDominators()
	cfg.findLoops()
	return cfg, nil
}

// BlockOf returns the block ID containing instruction index i.
func (c *CFG) BlockOf(i int) int { return c.blockOf[i] }

// LoopDepth returns the loop nesting depth of instruction index i
// (0 = not inside any loop).
func (c *CFG) LoopDepth(i int) int { return c.loopDepth[i] }

// InLoop reports whether instruction index i is inside a natural loop —
// the paper's "is the register inside a for-loop" check.
func (c *CFG) InLoop(i int) bool { return c.loopDepth[i] > 0 }

// IPDomPC returns the PC of the immediate post-dominator block's first
// instruction for the block containing instruction index i, and true; or
// false when the block post-dominates everything on its path (exit side).
// The simulator uses this as the reconvergence point of divergent branches.
func (c *CFG) IPDomPC(i int) (uint64, bool) {
	b := c.blockOf[i]
	p := c.ipdom[b]
	if p < 0 {
		return 0, false
	}
	return c.Kernel.Insts[c.Blocks[p].Start].PC, true
}

// computeDominators runs the classic iterative dominance algorithm
// (Cooper/Harvey/Kennedy) over the block graph in reverse post-order.
func (c *CFG) computeDominators() {
	order := c.reversePostOrder(false)
	c.idom = c.iterDoms(order, func(b int) []int { return c.Blocks[b].Preds }, 0)
}

// computePostDominators runs the same algorithm on the reversed graph.
// Multiple exit blocks are handled with a virtual exit (-2 internally,
// folded back to -1 in the result).
func (c *CFG) computePostDominators() {
	order := c.reversePostOrder(true)
	c.ipdom = c.iterDoms(order, func(b int) []int { return c.Blocks[b].Succs }, -1)
}

// reversePostOrder returns block IDs in reverse post-order of a DFS from
// the entry (or, for the reversed graph, from all exit blocks).
func (c *CFG) reversePostOrder(reversed bool) []int {
	n := len(c.Blocks)
	visited := make([]bool, n)
	var post []int
	var dfs func(b int)
	dfs = func(b int) {
		if visited[b] {
			return
		}
		visited[b] = true
		next := c.Blocks[b].Succs
		if reversed {
			next = c.Blocks[b].Preds
		}
		for _, s := range next {
			dfs(s)
		}
		post = append(post, b)
	}
	if reversed {
		for b := range c.Blocks {
			if len(c.Blocks[b].Succs) == 0 {
				dfs(b)
			}
		}
		// Unreachable-from-exit blocks (infinite loops) still need an order.
		for b := range c.Blocks {
			dfs(b)
		}
	} else {
		dfs(0)
	}
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// iterDoms computes immediate dominators over the given order. roots are
// blocks with no predecessors in the chosen direction; entry selects the
// forward entry block (or -1 for the post-dominator pass, where every
// exit block is a root).
func (c *CFG) iterDoms(order []int, preds func(int) []int, entry int) []int {
	n := len(c.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	pos := make([]int, n) // position in order, for intersect
	for i, b := range order {
		pos[b] = i
	}
	isRoot := func(b int) bool {
		if entry >= 0 {
			return b == entry
		}
		return len(c.Blocks[b].Succs) == 0
	}
	for _, b := range order {
		if isRoot(b) {
			idom[b] = b
		}
	}
	intersect := func(a, b int) int {
		for a != b {
			for pos[a] > pos[b] {
				a = idom[a]
				if a < 0 {
					return b
				}
			}
			for pos[b] > pos[a] {
				b = idom[b]
				if b < 0 {
					return a
				}
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if isRoot(b) {
				continue
			}
			newIdom := -1
			for _, p := range preds(b) {
				if idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	// Fold self-references (roots) to -1 to mean "none".
	for b := range idom {
		if idom[b] == b {
			idom[b] = -1
		}
	}
	return idom
}

// dominates reports whether block a dominates block b (forward sense).
func (c *CFG) dominates(a, b int) bool {
	for b >= 0 {
		if a == b {
			return true
		}
		if b == 0 {
			return a == 0
		}
		b = c.idom[b]
	}
	return false
}

// findLoops identifies natural loops from back edges (edge t->h where h
// dominates t) and computes per-instruction loop depth.
func (c *CFG) findLoops() {
	c.loopDepth = make([]int, len(c.Kernel.Insts))
	for bi := range c.Blocks {
		for _, succ := range c.Blocks[bi].Succs {
			if !c.dominates(succ, bi) {
				continue
			}
			// Back edge bi -> succ: collect the loop body.
			loop := Loop{Header: succ, Blocks: map[int]bool{succ: true}}
			stack := []int{bi}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if loop.Blocks[b] {
					continue
				}
				loop.Blocks[b] = true
				for _, p := range c.Blocks[b].Preds {
					stack = append(stack, p)
				}
			}
			c.Loops = append(c.Loops, loop)
			for b := range loop.Blocks {
				for i := c.Blocks[b].Start; i < c.Blocks[b].End; i++ {
					c.loopDepth[i]++
				}
			}
		}
	}
	sort.Slice(c.Loops, func(i, j int) bool { return c.Loops[i].Header < c.Loops[j].Header })
}
