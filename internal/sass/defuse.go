package sass

// DefUse indexes, per architectural register, where it is defined (written)
// and used (read). Several detectors rely on it:
//
//   - §4.2 register spilling asks "which instruction last wrote the spilled
//     register before the STL" to name the operation that caused the spill;
//   - §4.5 read-only cache asks whether a register (or the memory reachable
//     from a pointer register pair) is read-only throughout the kernel;
//   - §4.3 shared memory counts arithmetic uses of loaded registers.
type DefUse struct {
	Kernel *Kernel
	// Defs[r] / Uses[r] list instruction indices in program order.
	Defs [NumArchRegs][]int
	Uses [NumArchRegs][]int
}

// ComputeDefUse builds the def-use index for a kernel.
func ComputeDefUse(k *Kernel) *DefUse {
	du := &DefUse{Kernel: k}
	var scratch []Reg
	for i := range k.Insts {
		in := &k.Insts[i]
		for _, r := range in.DstRegs(scratch[:0]) {
			if r != RZ {
				du.Defs[r] = append(du.Defs[r], i)
			}
		}
		for _, r := range in.SrcRegs(scratch[:0]) {
			if r != RZ {
				du.Uses[r] = append(du.Uses[r], i)
			}
		}
	}
	return du
}

// LastDefBefore returns the index of the last instruction before index i
// (in program order) that writes register r, or -1. This is the paper's
// "the previous SASS instruction executed by the register" that is blamed
// for a spill (§3.2).
func (du *DefUse) LastDefBefore(r Reg, i int) int {
	if r == RZ {
		return -1
	}
	defs := du.Defs[r]
	last := -1
	for _, d := range defs {
		if d >= i {
			break
		}
		last = d
	}
	return last
}

// IsReadOnly reports whether register r is written at most once (its
// initializing definition) and only ever read afterwards — the paper's
// "read-only throughout the kernel" property used by the __restrict__
// recommendation (§4.5). Registers with zero defs (kernel inputs via
// constant bank go through MOV/LDC, so this is rare) count as read-only.
func (du *DefUse) IsReadOnly(r Reg) bool {
	if r == RZ {
		return true
	}
	return len(du.Defs[r]) <= 1
}

// PointerStoredThrough reports whether any store or atomic instruction
// uses register pair (base, base+1) as its memory address — i.e. whether
// the pointer held in that pair is ever written through. Pointers never
// stored through are candidates for const __restrict__ (§4.5) and for
// the texture path (§4.6).
func (du *DefUse) PointerStoredThrough(base Reg) bool {
	k := du.Kernel
	for i := range k.Insts {
		in := &k.Insts[i]
		switch in.Op {
		case OpSTG, OpSTS, OpSTL, OpATOM, OpATOMS, OpRED:
			if m, ok := in.MemOperand(); ok && m.Reg == base {
				return true
			}
		}
	}
	return false
}

// PointerStoredThroughAt is the version-aware form of
// PointerStoredThrough: physical registers are reused by the allocator,
// so a store through the same register only aliases the pointer a load at
// loadIdx uses when both see the same reaching definition of the base.
func (du *DefUse) PointerStoredThroughAt(base Reg, loadIdx int) bool {
	k := du.Kernel
	ver := du.LastDefBefore(base, loadIdx)
	for i := range k.Insts {
		in := &k.Insts[i]
		switch in.Op {
		case OpSTG, OpSTS, OpSTL, OpATOM, OpATOMS, OpRED:
			if m, ok := in.MemOperand(); ok && m.Reg == base &&
				du.LastDefBefore(base, i) == ver {
				return true
			}
		}
	}
	return false
}

// UseLinesAfter returns the source lines of instructions that read
// register r at or after instruction index i, before r is redefined.
// GPUscout uses this to widen stall correlation to the consumers of a
// flagged load (stalls surface at the dependent instruction).
func (du *DefUse) UseLinesAfter(r Reg, i int) []int {
	if r == RZ {
		return nil
	}
	k := du.Kernel
	// Find the next redefinition after i.
	next := len(k.Insts)
	for _, d := range du.Defs[r] {
		if d > i {
			next = d
			break
		}
	}
	var lines []int
	for _, u := range du.Uses[r] {
		if u > i && u <= next {
			if l := k.Insts[u].Line; l > 0 {
				lines = append(lines, l)
			}
		}
	}
	return lines
}

// ArithUseCount returns how many arithmetic instructions read register r
// (the Fig. 4 "arithmetic instruction count" on a loaded register).
func (du *DefUse) ArithUseCount(r Reg) int {
	if r == RZ {
		return 0
	}
	n := 0
	k := du.Kernel
	for _, u := range du.Uses[r] {
		if IsArith(k.Insts[u].Op) {
			n++
		}
	}
	return n
}

// ArithUseCountAt returns how many arithmetic instructions read the value
// register r holds after its definition at defIdx: uses between defIdx
// and r's next redefinition. The whole-register ArithUseCount overcounts
// when the allocator later recycles r for an unrelated value.
func (du *DefUse) ArithUseCountAt(r Reg, defIdx int) int {
	if r == RZ {
		return 0
	}
	k := du.Kernel
	next := len(k.Insts)
	for _, d := range du.Defs[r] {
		if d > defIdx {
			next = d
			break
		}
	}
	n := 0
	for _, u := range du.Uses[r] {
		if u > defIdx && u <= next && IsArith(k.Insts[u].Op) {
			n++
		}
	}
	return n
}

// UseCount returns the total number of reads of register r.
func (du *DefUse) UseCount(r Reg) int {
	if r == RZ {
		return 0
	}
	return len(du.Uses[r])
}
