package sass

import (
	"fmt"
	"strings"
)

// Print renders the kernel in the nvdisasm-like text format understood by
// Parse. The format includes a ".kernel" resource header, "//## File"
// line-info markers (as produced by nvdisasm --print-line-info for
// binaries compiled with -g --generate-line-info), and per-instruction
// control information after the ";".
func Print(k *Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\t.kernel %s %s regs=%d shared=%d local=%d const=%d\n",
		k.Name, k.Arch, k.NumRegs, k.SharedBytes, k.LocalBytes, k.ConstBytes)
	if k.SourceFile != "" {
		fmt.Fprintf(&b, "\t.file %q\n", k.SourceFile)
	}
	curLine, curFile := -1, ""
	for i := range k.Insts {
		in := &k.Insts[i]
		if in.Line != curLine || in.File != curFile {
			curLine, curFile = in.Line, in.File
			file := in.File
			if file == "" {
				file = k.SourceFile
			}
			fmt.Fprintf(&b, "\t//## File %q, line %d\n", file, in.Line)
		}
		b.WriteString("\t")
		b.WriteString(in.String())
		b.WriteString("  ")
		b.WriteString(formatCtrl(in.Ctrl))
		b.WriteString("\n")
	}
	return b.String()
}

func formatCtrl(c Ctrl) string {
	var b strings.Builder
	b.WriteString("& wr=")
	writeBar(&b, c.WrBar)
	b.WriteString(" rd=")
	writeBar(&b, c.RdBar)
	fmt.Fprintf(&b, " wt=0x%x st=%d", c.WaitMask, c.Stall)
	if c.Yield {
		b.WriteString(" Y")
	}
	return b.String()
}

func writeBar(b *strings.Builder, bar int8) {
	if bar == NoBar {
		b.WriteString("-")
	} else {
		fmt.Fprintf(b, "%d", bar)
	}
}
