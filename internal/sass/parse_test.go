package sass

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// testKernel builds a small, valid kernel resembling nvcc output for
//
//	out[i] = a[i] * b[i] + acc   (guarded by i < n)
func testKernel() *Kernel {
	k := &Kernel{
		Name:       "_Z6axpbyiPfS_S_",
		Arch:       "sm_70",
		NumRegs:    16,
		ConstBytes: 0x190,
		SourceFile: "axpby.cu",
	}
	ctrl := DefaultCtrl()
	ld := ctrl
	ld.WrBar = 0
	wait := ctrl
	wait.WaitMask = 0x1
	k.Insts = []Inst{
		{Op: OpS2R, Dst: []Operand{R(0)}, Src: []Operand{SR(SRTidX)}, Ctrl: ctrl, Line: 3},
		{Op: OpS2R, Dst: []Operand{R(1)}, Src: []Operand{SR(SRCtaidX)}, Ctrl: ctrl, Line: 3},
		{Op: OpIMAD, Dst: []Operand{R(0)}, Src: []Operand{R(1), Const(0, 0x0), R(0)}, Ctrl: ctrl, Line: 3},
		{Op: OpISETP, Mods: []string{"GE", "AND"}, Dst: []Operand{P(0), P(PT)},
			Src: []Operand{R(0), Const(0, 0x160), P(PT)}, Ctrl: ctrl, Line: 4},
		{Op: OpBRA, Pred: 0, Target: 9 * InstBytes, Ctrl: ctrl, Line: 4},
		{Op: OpIMAD, Mods: []string{"WIDE"}, Dst: []Operand{R(2)},
			Src: []Operand{R(0), Imm(4), R(4)}, Ctrl: ctrl, Line: 5},
		{Op: OpLDG, Mods: []string{"E", "SYS"}, Dst: []Operand{R(6)},
			Src: []Operand{Mem(2, 0)}, Ctrl: ld, Line: 5},
		{Op: OpFFMA, Dst: []Operand{R(7)}, Src: []Operand{R(6), R(6), R(8)}, Ctrl: wait, Line: 6},
		{Op: OpSTG, Mods: []string{"E", "SYS"}, Dst: []Operand{Mem(2, 0)},
			Src: []Operand{R(7)}, Ctrl: ctrl, Line: 6},
		{Op: OpEXIT, Ctrl: ctrl, Line: 7},
	}
	for i := range k.Insts {
		if k.Insts[i].Pred == 0 && k.Insts[i].Op != OpBRA {
			k.Insts[i].Pred = PT
		}
	}
	k.RenumberPCs()
	return k
}

func TestValidate(t *testing.T) {
	k := testKernel()
	if err := k.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	k := testKernel()
	text := Print(k)
	got, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\ntext:\n%s", err, text)
	}
	if got.Name != k.Name || got.Arch != k.Arch || got.NumRegs != k.NumRegs ||
		got.ConstBytes != k.ConstBytes || got.SourceFile != k.SourceFile {
		t.Errorf("header mismatch: got %+v", got)
	}
	if len(got.Insts) != len(k.Insts) {
		t.Fatalf("instruction count: got %d want %d", len(got.Insts), len(k.Insts))
	}
	for i := range k.Insts {
		a, b := k.Insts[i], got.Insts[i]
		// Normalize nil vs empty slices for comparison.
		if len(a.Mods) == 0 {
			a.Mods = nil
		}
		if len(b.Mods) == 0 {
			b.Mods = nil
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("inst %d:\n got %#v\nwant %#v", i, b, a)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"no header", "/*0000*/ EXIT ;"},
		{"bad opcode", "\t.kernel k sm_70\n/*0000*/ FROB R0 ;"},
		{"bad register", "\t.kernel k sm_70\n/*0000*/ MOV R999, RZ ;"},
		{"missing semicolon", "\t.kernel k sm_70\n/*0000*/ MOV R0, RZ"},
		{"bad control", "\t.kernel k sm_70\n/*0000*/ MOV R0, RZ ; & zz=1"},
		{"bad stall", "\t.kernel k sm_70\n/*0000*/ MOV R0, RZ ; & st=99"},
		{"bad wait mask", "\t.kernel k sm_70\n/*0000*/ MOV R0, RZ ; & wt=0xfff"},
		{"bad header field", "\t.kernel k sm_70 bogus=1\n"},
		{"garbage line", "\t.kernel k sm_70\nwhat is this"},
		{"bra without target", "\t.kernel k sm_70\n/*0000*/ BRA ;"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.text); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.text)
			}
		})
	}
}

func TestLineAttribution(t *testing.T) {
	k := testKernel()
	text := Print(k)
	got, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.LineOf(6*InstBytes) != 5 {
		t.Errorf("LineOf(0x60) = %d, want 5", got.LineOf(6*InstBytes))
	}
	pcs := got.PCsForLine(6)
	if len(pcs) != 2 {
		t.Errorf("PCsForLine(6) = %v, want 2 PCs", pcs)
	}
	lines := got.Lines()
	want := []int{3, 4, 5, 6, 7}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("Lines() = %v, want %v", lines, want)
	}
}

// randomInst generates a structurally valid instruction for property
// testing the Print/Parse round-trip.
func randomInst(r *rand.Rand, pc uint64) Inst {
	ops := []Opcode{OpLDG, OpSTG, OpLDS, OpSTS, OpLDL, OpSTL, OpFADD, OpFFMA,
		OpIMAD, OpIADD3, OpMOV, OpI2F, OpF2F, OpS2R, OpISETP, OpATOM, OpTEX, OpEXIT}
	op := ops[r.Intn(len(ops))]
	in := Inst{PC: pc, Pred: PT, Op: op, Ctrl: DefaultCtrl(), Line: 1 + r.Intn(40)}
	if r.Intn(4) == 0 {
		in.Pred = Pred(r.Intn(NumPreds))
		in.PredNeg = r.Intn(2) == 0
	}
	in.Ctrl.Stall = uint8(r.Intn(16))
	in.Ctrl.Yield = r.Intn(2) == 0
	if r.Intn(2) == 0 {
		in.Ctrl.WrBar = int8(r.Intn(6))
	}
	if r.Intn(2) == 0 {
		in.Ctrl.RdBar = int8(r.Intn(6))
	}
	in.Ctrl.WaitMask = uint8(r.Intn(64))
	reg := func() Reg { return Reg(r.Intn(32) * 2) }
	switch op {
	case OpLDG:
		in.Mods = []string{"E", "SYS"}
		if r.Intn(2) == 0 {
			in.Mods = []string{"E", "128", "SYS"}
		}
		in.Dst = []Operand{R(reg())}
		in.Src = []Operand{Mem(reg(), int64(r.Intn(64)*4-128))}
	case OpSTG:
		in.Mods = []string{"E", "SYS"}
		in.Dst = []Operand{Mem(reg(), int64(r.Intn(16)*4))}
		in.Src = []Operand{R(reg())}
	case OpLDS, OpLDL:
		in.Dst = []Operand{R(reg())}
		in.Src = []Operand{Mem(RZ, int64(r.Intn(64)*4))}
	case OpSTS, OpSTL:
		in.Dst = []Operand{Mem(RZ, int64(r.Intn(64)*4))}
		in.Src = []Operand{R(reg())}
	case OpFADD, OpIADD3:
		in.Dst = []Operand{R(reg())}
		in.Src = []Operand{R(reg()), R(reg()), R(reg())}
	case OpFFMA, OpIMAD:
		in.Dst = []Operand{R(reg())}
		in.Src = []Operand{R(reg()), R(reg()), R(reg())}
	case OpMOV:
		in.Dst = []Operand{R(reg())}
		in.Src = []Operand{Imm(int64(r.Int31()))}
	case OpI2F, OpF2F:
		in.Mods = []string{"F32", "S32"}
		in.Dst = []Operand{R(reg())}
		in.Src = []Operand{R(reg())}
	case OpS2R:
		in.Dst = []Operand{R(reg())}
		in.Src = []Operand{SR(SRTidX)}
	case OpISETP:
		in.Mods = []string{"LT", "AND"}
		in.Dst = []Operand{P(Pred(r.Intn(NumPreds))), P(PT)}
		in.Src = []Operand{R(reg()), Const(0, int64(r.Intn(16)*4+0x160)), P(PT)}
	case OpATOM:
		in.Mods = []string{"E", "ADD"}
		in.Dst = []Operand{R(reg()), Mem(reg(), 0)}
		in.Src = []Operand{R(reg())}
	case OpTEX:
		in.Mods = []string{"2D"}
		in.Dst = []Operand{R(reg())}
		in.Src = []Operand{R(reg()), R(reg()), Imm(int64(r.Intn(4)))}
	case OpEXIT:
	}
	return in
}

func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%24) + 1
		k := &Kernel{Name: "_Zquick", Arch: "sm_70", NumRegs: 64, SourceFile: "q.cu"}
		for i := 0; i < count; i++ {
			k.Insts = append(k.Insts, randomInst(r, uint64(i)*InstBytes))
		}
		k.Insts = append(k.Insts, Inst{PC: uint64(count) * InstBytes, Pred: PT, Op: OpEXIT, Ctrl: DefaultCtrl()})
		text := Print(k)
		got, err := Parse(text)
		if err != nil {
			t.Logf("parse failed: %v\n%s", err, text)
			return false
		}
		if len(got.Insts) != len(k.Insts) {
			return false
		}
		for i := range k.Insts {
			a, b := k.Insts[i], got.Insts[i]
			if a.Mnemonic() != b.Mnemonic() || a.PC != b.PC || a.Line != b.Line ||
				a.Pred != b.Pred || a.PredNeg != b.PredNeg ||
				!reflect.DeepEqual(a.Ctrl, b.Ctrl) ||
				!reflect.DeepEqual(a.Dst, b.Dst) || !operandsEqual(a.Src, b.Src) {
				t.Logf("inst %d mismatch:\n got %#v\nwant %#v", i, b, a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func operandsEqual(a, b []Operand) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMnemonicAndWidth(t *testing.T) {
	in := Inst{Op: OpLDG, Mods: []string{"E", "128", "SYS"}}
	if got := in.Mnemonic(); got != "LDG.E.128.SYS" {
		t.Errorf("Mnemonic = %q", got)
	}
	if in.WidthBytes() != 16 {
		t.Errorf("WidthBytes = %d, want 16", in.WidthBytes())
	}
	if !in.IsVectorized() {
		t.Error("IsVectorized = false, want true")
	}
	in64 := Inst{Op: OpLDG, Mods: []string{"E", "64", "SYS"}}
	if in64.WidthBytes() != 8 {
		t.Errorf("WidthBytes(.64) = %d, want 8", in64.WidthBytes())
	}
	plain := Inst{Op: OpLDG, Mods: []string{"E", "SYS"}}
	if plain.WidthBytes() != 4 || plain.IsVectorized() {
		t.Error("plain LDG.E should be 4 bytes, non-vectorized")
	}
	nc := Inst{Op: OpLDG, Mods: []string{"E", "NC", "SYS"}}
	if !nc.IsNC() {
		t.Error("LDG.E.NC should report IsNC")
	}
}

func TestDstSrcRegs(t *testing.T) {
	// LDG.E.128 writes a quad.
	in := Inst{Op: OpLDG, Mods: []string{"E", "128", "SYS"},
		Dst: []Operand{R(4)}, Src: []Operand{Mem(2, 0)}}
	dst := in.DstRegs(nil)
	if len(dst) != 4 || dst[0] != 4 || dst[3] != 7 {
		t.Errorf("LDG.E.128 DstRegs = %v", dst)
	}
	src := in.SrcRegs(nil)
	if len(src) != 2 || src[0] != 2 || src[1] != 3 {
		t.Errorf("LDG.E.128 SrcRegs = %v (want address pair R2,R3)", src)
	}

	// STG reads the address pair and the stored value.
	st := Inst{Op: OpSTG, Mods: []string{"E", "SYS"},
		Dst: []Operand{Mem(8, 0)}, Src: []Operand{R(5)}}
	src = st.SrcRegs(nil)
	if len(src) != 3 {
		t.Errorf("STG SrcRegs = %v, want value + address pair", src)
	}

	// IMAD.WIDE writes a pair and reads a pair accumulator.
	w := Inst{Op: OpIMAD, Mods: []string{"WIDE"},
		Dst: []Operand{R(2)}, Src: []Operand{R(0), Imm(4), R(10)}}
	dst = w.DstRegs(nil)
	if len(dst) != 2 || dst[1] != 3 {
		t.Errorf("IMAD.WIDE DstRegs = %v", dst)
	}
	src = w.SrcRegs(nil)
	if len(src) != 3 || src[0] != 0 || src[1] != 10 || src[2] != 11 {
		t.Errorf("IMAD.WIDE SrcRegs = %v, want [R0 R10 R11]", src)
	}

	// DFMA reads/writes pairs.
	d := Inst{Op: OpDFMA, Dst: []Operand{R(4)}, Src: []Operand{R(6), R(8), R(4)}}
	if got := len(d.DstRegs(nil)); got != 2 {
		t.Errorf("DFMA DstRegs count = %d", got)
	}
	if got := len(d.SrcRegs(nil)); got != 6 {
		t.Errorf("DFMA SrcRegs count = %d", got)
	}

	// F2F.F64.F32 widens (pair dst, single src);
	// F2F.F32.F64 narrows (single dst, pair src).
	widen := Inst{Op: OpF2F, Mods: []string{"F64", "F32"}, Dst: []Operand{R(2)}, Src: []Operand{R(0)}}
	if got := len(widen.DstRegs(nil)); got != 2 {
		t.Errorf("F2F.F64.F32 DstRegs count = %d, want 2", got)
	}
	if got := len(widen.SrcRegs(nil)); got != 1 {
		t.Errorf("F2F.F64.F32 SrcRegs count = %d, want 1", got)
	}
	narrow := Inst{Op: OpF2F, Mods: []string{"F32", "F64"}, Dst: []Operand{R(2)}, Src: []Operand{R(0)}}
	if got := len(narrow.DstRegs(nil)); got != 1 {
		t.Errorf("F2F.F32.F64 DstRegs count = %d, want 1", got)
	}
	if got := len(narrow.SrcRegs(nil)); got != 2 {
		t.Errorf("F2F.F32.F64 SrcRegs count = %d, want 2", got)
	}

	// Guard predicates show up in SrcPreds; ISETP dsts in DstPreds.
	is := Inst{Op: OpISETP, Pred: 2, Dst: []Operand{P(0), P(PT)},
		Src: []Operand{R(1), R(2), NotP(3)}}
	if got := is.DstPreds(nil); len(got) != 1 || got[0] != 0 {
		t.Errorf("DstPreds = %v", got)
	}
	if got := is.SrcPreds(nil); len(got) != 2 {
		t.Errorf("SrcPreds = %v, want guard P2 and source P3", got)
	}
}

func TestOpcodeClassification(t *testing.T) {
	if ClassOf(OpLDG) != ClassGlobal || ClassOf(OpLDL) != ClassLocal ||
		ClassOf(OpLDS) != ClassShared || ClassOf(OpTEX) != ClassTexture ||
		ClassOf(OpDFMA) != ClassFP64 || ClassOf(OpMUFU) != ClassSFU ||
		ClassOf(OpBRA) != ClassControl || ClassOf(OpFFMA) != ClassALU {
		t.Error("ClassOf misclassifies an opcode")
	}
	if !IsMemory(OpATOM) || IsMemory(OpFFMA) {
		t.Error("IsMemory wrong")
	}
	if !IsLoad(OpTEX) || IsLoad(OpSTG) {
		t.Error("IsLoad wrong")
	}
	if !IsStore(OpSTL) || IsStore(OpLDL) {
		t.Error("IsStore wrong")
	}
	if !IsConversion(OpI2F) || IsConversion(OpMOV) {
		t.Error("IsConversion wrong")
	}
	if !IsArith(OpFFMA) || IsArith(OpLDG) || IsArith(OpBRA) {
		t.Error("IsArith wrong")
	}
	for op := OpLDG; op < opMax; op++ {
		if op.String() == "" || strings.Contains(op.String(), "Opcode(") {
			t.Errorf("opcode %d has no name", op)
		}
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
}
