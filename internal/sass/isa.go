// Package sass models a Volta-class NVIDIA SASS instruction set: the
// machine code GPUscout's static analysis pillar operates on.
//
// The package provides the instruction representation, an nvdisasm-style
// text parser and printer, control-flow analysis (basic blocks, dominators,
// natural loops), register liveness/pressure, and def-use chains. These are
// the primitives every bottleneck detector in internal/scout builds on.
package sass

import "fmt"

// InstBytes is the encoded size of one instruction. Volta and newer
// architectures use 128-bit (16-byte) instruction words, so program
// counters advance in steps of 0x10.
const InstBytes = 0x10

// Reg names a 32-bit general-purpose register. R0..R254 are allocatable;
// RZ (255) reads as zero and discards writes. 64-bit quantities (addresses,
// doubles) occupy aligned register pairs (Rn, Rn+1).
type Reg uint16

// RZ is the zero register.
const RZ Reg = 255

// NumArchRegs is the number of allocatable architectural registers per
// thread (R0..R254).
const NumArchRegs = 255

func (r Reg) String() string {
	if r == RZ {
		return "RZ"
	}
	return fmt.Sprintf("R%d", r)
}

// IsZ reports whether the register is the zero register.
func (r Reg) IsZ() bool { return r == RZ }

// Pred names a 1-bit predicate register. P0..P6 are allocatable; PT (7)
// is always true.
type Pred uint8

// PT is the always-true predicate.
const PT Pred = 7

// NumPreds is the number of allocatable predicate registers per thread.
const NumPreds = 7

func (p Pred) String() string {
	if p == PT {
		return "PT"
	}
	return fmt.Sprintf("P%d", p)
}

// Opcode identifies the base operation of an instruction. Variants
// (width, cache policy, comparison op, conversion types, ...) are carried
// as dot-separated modifiers, mirroring nvdisasm output such as
// "LDG.E.128.SYS" or "ISETP.GE.AND".
type Opcode uint8

// Supported opcodes. The set covers everything GPUscout's detectors look
// for (global/local/shared/texture/atomic memory traffic, conversions)
// plus the arithmetic and control instructions needed to express the
// paper's case-study kernels.
const (
	OpInvalid Opcode = iota

	// Memory.
	OpLDG  // load from global memory
	OpSTG  // store to global memory
	OpLDS  // load from shared memory
	OpSTS  // store to shared memory
	OpLDL  // load from local memory (register spill reload)
	OpSTL  // store to local memory (register spill)
	OpLDC  // load from constant bank (kernel parameters)
	OpTEX  // texture fetch
	OpATOM // atomic on global memory
	OpATOMS
	OpRED // reduction (atomic without return) on global memory
	OpMEMBAR

	// 32-bit float.
	OpFADD
	OpFMUL
	OpFFMA
	OpFMNMX
	OpFSETP
	OpMUFU // multi-function unit: RCP, RSQ, SQRT, ...

	// 64-bit float (register pairs).
	OpDADD
	OpDMUL
	OpDFMA
	OpDSETP

	// Integer.
	OpIADD3
	OpIMAD // integer multiply-add; .WIDE form produces a 64-bit pair
	OpISETP
	OpLOP3 // logic op; we use .AND/.OR/.XOR convenience modifiers
	OpSHF  // funnel shift
	OpSEL
	OpIMNMX
	OpIABS
	OpPOPC

	// Conversions (the §4.7 detector counts these).
	OpI2F
	OpF2I
	OpF2F
	OpI2I

	// Data movement.
	OpMOV
	OpS2R  // read special register (tid, ctaid, ...)
	OpSHFL // warp shuffle
	OpPRMT

	// Control.
	OpBRA
	OpEXIT
	OpBAR
	OpNOP
	OpRET

	// Async copy (sm_80+): global→shared transfer that bypasses the
	// register file and L1, the SASS form of cp.async. Appended after the
	// original set so existing opcode values stay stable.
	OpLDGSTS

	opMax
)

// NumOpcodes is the number of opcode values (including OpInvalid); dense
// per-opcode tables index by Opcode below this bound.
const NumOpcodes = int(opMax)

var opNames = [...]string{
	OpInvalid: "<invalid>",
	OpLDG:     "LDG",
	OpSTG:     "STG",
	OpLDS:     "LDS",
	OpSTS:     "STS",
	OpLDL:     "LDL",
	OpSTL:     "STL",
	OpLDC:     "LDC",
	OpTEX:     "TEX",
	OpATOM:    "ATOM",
	OpATOMS:   "ATOMS",
	OpRED:     "RED",
	OpMEMBAR:  "MEMBAR",
	OpFADD:    "FADD",
	OpFMUL:    "FMUL",
	OpFFMA:    "FFMA",
	OpFMNMX:   "FMNMX",
	OpFSETP:   "FSETP",
	OpMUFU:    "MUFU",
	OpDADD:    "DADD",
	OpDMUL:    "DMUL",
	OpDFMA:    "DFMA",
	OpDSETP:   "DSETP",
	OpIADD3:   "IADD3",
	OpIMAD:    "IMAD",
	OpISETP:   "ISETP",
	OpLOP3:    "LOP3",
	OpSHF:     "SHF",
	OpSEL:     "SEL",
	OpIMNMX:   "IMNMX",
	OpIABS:    "IABS",
	OpPOPC:    "POPC",
	OpI2F:     "I2F",
	OpF2I:     "F2I",
	OpF2F:     "F2F",
	OpI2I:     "I2I",
	OpMOV:     "MOV",
	OpS2R:     "S2R",
	OpSHFL:    "SHFL",
	OpPRMT:    "PRMT",
	OpBRA:     "BRA",
	OpEXIT:    "EXIT",
	OpBAR:     "BAR",
	OpNOP:     "NOP",
	OpRET:     "RET",
	OpLDGSTS:  "LDGSTS",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// opByName is the reverse of opNames, built lazily at init.
var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, name := range opNames {
		if Opcode(op) != OpInvalid {
			m[name] = Opcode(op)
		}
	}
	return m
}()

// OpcodeByName resolves a base mnemonic ("LDG") to its Opcode.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

// Class buckets opcodes by the pipeline that executes them; the simulator
// and the stall attribution logic key off this.
type Class uint8

const (
	ClassALU     Class = iota // fixed-latency integer/logic/fp32 pipe
	ClassFP64                 // fp64 pipe (lower throughput)
	ClassSFU                  // special function unit (MUFU)
	ClassGlobal               // L1TEX global path (LDG/STG/ATOM/RED)
	ClassLocal                // L1TEX local path (LDL/STL)
	ClassShared               // MIO shared-memory path (LDS/STS/ATOMS)
	ClassTexture              // TEX path
	ClassConst                // constant cache
	ClassControl
)

func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassFP64:
		return "fp64"
	case ClassSFU:
		return "sfu"
	case ClassGlobal:
		return "global"
	case ClassLocal:
		return "local"
	case ClassShared:
		return "shared"
	case ClassTexture:
		return "texture"
	case ClassConst:
		return "const"
	case ClassControl:
		return "control"
	}
	return "unknown"
}

// ClassOf returns the execution class of an opcode.
func ClassOf(op Opcode) Class {
	switch op {
	case OpLDG, OpSTG, OpATOM, OpRED, OpLDGSTS:
		return ClassGlobal
	case OpLDL, OpSTL:
		return ClassLocal
	case OpLDS, OpSTS, OpATOMS:
		return ClassShared
	case OpTEX:
		return ClassTexture
	case OpLDC:
		return ClassConst
	case OpDADD, OpDMUL, OpDFMA, OpDSETP:
		return ClassFP64
	case OpMUFU:
		return ClassSFU
	case OpBRA, OpEXIT, OpBAR, OpRET, OpNOP, OpMEMBAR:
		return ClassControl
	default:
		return ClassALU
	}
}

// IsMemory reports whether the opcode accesses a memory space.
func IsMemory(op Opcode) bool {
	switch op {
	case OpLDG, OpSTG, OpLDS, OpSTS, OpLDL, OpSTL, OpLDC, OpTEX, OpATOM, OpATOMS, OpRED,
		OpLDGSTS:
		return true
	}
	return false
}

// IsLoad reports whether the opcode reads memory into registers.
func IsLoad(op Opcode) bool {
	switch op {
	case OpLDG, OpLDS, OpLDL, OpLDC, OpTEX:
		return true
	}
	return false
}

// IsStore reports whether the opcode writes registers to memory.
func IsStore(op Opcode) bool {
	switch op {
	case OpSTG, OpSTS, OpSTL:
		return true
	}
	return false
}

// IsConversion reports whether the opcode is a datatype conversion
// (the §4.7 bottleneck class).
func IsConversion(op Opcode) bool {
	switch op {
	case OpI2F, OpF2I, OpF2F, OpI2I:
		return true
	}
	return false
}

// IsArith reports whether the opcode performs arithmetic on register
// values (used by the shared-memory detector to count compute uses).
func IsArith(op Opcode) bool {
	switch op {
	case OpFADD, OpFMUL, OpFFMA, OpFMNMX, OpMUFU,
		OpDADD, OpDMUL, OpDFMA,
		OpIADD3, OpIMAD, OpLOP3, OpSHF, OpSEL, OpIMNMX, OpIABS, OpPOPC:
		return true
	}
	return false
}

// SpecialReg enumerates the special registers readable via S2R.
type SpecialReg uint8

const (
	SRInvalid SpecialReg = iota
	SRTidX
	SRTidY
	SRTidZ
	SRCtaidX
	SRCtaidY
	SRCtaidZ
	SRLaneID
	SRNTidX // blockDim.x
	SRNTidY
	SRNCtaidX // gridDim.x
	SRNCtaidY
)

var srNames = [...]string{
	SRInvalid: "SR_INVALID",
	SRTidX:    "SR_TID.X",
	SRTidY:    "SR_TID.Y",
	SRTidZ:    "SR_TID.Z",
	SRCtaidX:  "SR_CTAID.X",
	SRCtaidY:  "SR_CTAID.Y",
	SRCtaidZ:  "SR_CTAID.Z",
	SRLaneID:  "SR_LANEID",
	SRNTidX:   "SR_NTID.X",
	SRNTidY:   "SR_NTID.Y",
	SRNCtaidX: "SR_NCTAID.X",
	SRNCtaidY: "SR_NCTAID.Y",
}

func (s SpecialReg) String() string {
	if int(s) < len(srNames) {
		return srNames[s]
	}
	return fmt.Sprintf("SR_%d", uint8(s))
}

var srByName = func() map[string]SpecialReg {
	m := make(map[string]SpecialReg, len(srNames))
	for sr, name := range srNames {
		m[name] = SpecialReg(sr)
	}
	return m
}()

// SpecialRegByName resolves an "SR_*" token.
func SpecialRegByName(name string) (SpecialReg, bool) {
	sr, ok := srByName[name]
	return sr, ok
}
