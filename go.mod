module gpuscout

go 1.22
