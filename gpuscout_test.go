package gpuscout_test

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gpuscout"
	"gpuscout/internal/kasm"
)

// buildScaleKernel constructs the quickstart kernel via the public API.
func buildScaleKernel(t testing.TB) *gpuscout.Kernel {
	t.Helper()
	b := gpuscout.NewKernelBuilder("_Z5scalePKfPff", "sm_70", "scale.cu")
	b.SetSource([]string{
		`__global__ void scale(const float* in, float* out, float f) {`,
		`    int i = blockIdx.x * blockDim.x + threadIdx.x;`,
		`    out[i] = in[i] * f;`,
		`}`,
	})
	b.NumParams(3)
	b.Line(2)
	tid := b.TidX()
	cta := b.CtaidX()
	ntid := b.NTidX()
	i := b.IMad(kasm.VR(cta), kasm.VR(ntid), kasm.VR(tid))
	b.Line(3)
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)
	f := b.Param32(2)
	off := b.Shl(kasm.VR(i), 2)
	src := b.IMadWide(kasm.VR(off), kasm.VImm(1), in)
	dst := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
	v := b.Ldg(src, 0, 4, false)
	r := b.FMul(kasm.VR(v), kasm.VR(f))
	b.Stg(dst, 0, r, 4)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	k, err := gpuscout.CompileKernel(prog, gpuscout.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestPublicAPIEndToEnd(t *testing.T) {
	k := buildScaleKernel(t)

	// SASS round-trip through the public API.
	text := gpuscout.PrintSASS(k)
	k2, err := gpuscout.ParseSASS(text)
	if err != nil {
		t.Fatalf("ParseSASS: %v", err)
	}
	if len(k2.Insts) != len(k.Insts) {
		t.Fatalf("round trip lost instructions: %d vs %d", len(k2.Insts), len(k.Insts))
	}

	// Run on the device.
	arch := gpuscout.V100()
	dev := gpuscout.NewDevice(arch)
	const n = 1024
	inBuf := dev.MustAlloc(4 * n)
	outBuf := dev.MustAlloc(4 * n)
	vals := make([]float32, n)
	for j := range vals {
		vals[j] = float32(j)
	}
	if err := dev.WriteF32(inBuf, vals); err != nil {
		t.Fatal(err)
	}
	spec := gpuscout.LaunchSpec{
		Kernel: k,
		Grid:   gpuscout.D1(n / 128),
		Block:  gpuscout.D1(128),
		Params: []uint64{inBuf.Addr, outBuf.Addr, uint64(math.Float32bits(3))},
	}
	res, err := gpuscout.Launch(dev, spec, gpuscout.SimConfig{SampleSMs: arch.NumSMs})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	got, err := dev.ReadF32(outBuf, n)
	if err != nil {
		t.Fatal(err)
	}
	for j := range got {
		if got[j] != 3*float32(j) {
			t.Fatalf("out[%d] = %v", j, got[j])
		}
	}
	if res.Cycles <= 0 {
		t.Error("no cycles")
	}

	// Analyze via the public facade.
	rep, err := gpuscout.Analyze(arch, k, func(cfg gpuscout.SimConfig) (*gpuscout.SimResult, error) {
		d := gpuscout.NewDevice(arch)
		ib := d.MustAlloc(4 * n)
		ob := d.MustAlloc(4 * n)
		if err := d.WriteF32(ib, vals); err != nil {
			return nil, err
		}
		s := spec
		s.Params = []uint64{ib.Addr, ob.Addr, uint64(math.Float32bits(3))}
		return gpuscout.Launch(d, s, cfg)
	}, gpuscout.Options{Sim: gpuscout.SimConfig{SampleSMs: 2}})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !strings.Contains(rep.Render(), "GPUscout report") {
		t.Error("report rendering broken")
	}
	// The in pointer is read-only: the §4.5 detector should fire.
	found := false
	for i := range rep.Findings {
		if rep.Findings[i].Analysis == "readonly_cache" {
			found = true
		}
	}
	if !found {
		t.Error("readonly_cache finding missing on const input pointer")
	}
}

func TestPublicCubinRoundTrip(t *testing.T) {
	k := buildScaleKernel(t)
	bin := gpuscout.NewBinary("sm_70")
	if err := bin.Add(k); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scale.cubin")
	if err := gpuscout.SaveCubin(path, bin); err != nil {
		t.Fatalf("SaveCubin: %v", err)
	}
	got, err := gpuscout.LoadCubin(path)
	if err != nil {
		t.Fatalf("LoadCubin: %v", err)
	}
	k2, err := got.Kernel(k.Name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := gpuscout.DryRun(gpuscout.P100(), k2)
	if err != nil {
		t.Fatalf("DryRun on loaded cubin: %v", err)
	}
	if !rep.DryRun {
		t.Error("not a dry run")
	}
	if _, err := gpuscout.LoadCubin(filepath.Join(t.TempDir(), "missing.cubin")); err == nil {
		t.Error("LoadCubin of missing file succeeded")
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gpuscout.LoadCubin(path); err == nil {
		t.Error("LoadCubin accepted garbage")
	}
}

func TestPublicWorkloads(t *testing.T) {
	names := gpuscout.WorkloadNames()
	if len(names) < 13 {
		t.Errorf("only %d workloads registered: %v", len(names), names)
	}
	w, err := gpuscout.BuildWorkload("jacobi_naive", 128)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpuscout.RunWorkload(w, gpuscout.V100(), gpuscout.SimConfig{SampleSMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles")
	}
	if _, err := gpuscout.ArchByName("sm_99"); err == nil {
		t.Error("ArchByName accepted unknown arch")
	}
}
