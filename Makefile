# Developer entry points. `make check` is the full gate (build + vet +
# race-enabled tests) referenced from README.md.

GO ?= go

.PHONY: check build vet test race chaos serve bench-parallel fmt-check

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator-heavy packages are slow under the race detector on
# small machines; raise the per-package timeout well past the default.
race:
	$(GO) test -race -timeout 30m ./...

# Fault-injection chaos suite: every workload through every reachable
# fault site, under the race detector (see DESIGN.md §10).
chaos:
	$(GO) test -race -tags faultinject -run 'Chaos' -timeout 30m ./...

# Run the analysis service locally.
serve:
	$(GO) run ./cmd/gpuscoutd -addr :8090

# Parallel-simulation benchmark + regression gate (what the nightly
# bench workflow runs); writes BENCH_parallel_sim.json.
bench-parallel:
	$(GO) test -run '^$$' -bench BenchmarkParallelLaunch -cpu 1,4 \
		-benchtime=3x -timeout 30m . | tee bench.txt
	$(GO) run ./cmd/benchgate -in bench.txt -out BENCH_parallel_sim.json

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "$$out"; exit 1; fi
