# Developer entry points. `make check` is the full gate (build + vet +
# race-enabled tests) referenced from README.md.

GO ?= go

.PHONY: check build vet test race chaos cluster-test soak serve bench-parallel fmt-check test-arch arch-report

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator-heavy packages are slow under the race detector on
# small machines; raise the per-package timeout well past the default.
race:
	$(GO) test -race -timeout 30m ./...

# Fault-injection chaos suite: every workload through every reachable
# fault site, under the race detector (see DESIGN.md §10).
chaos:
	$(GO) test -race -tags faultinject -run 'Chaos' -timeout 30m ./...

# In-process multi-replica cluster suite: 5 workers + a coordinator on
# loopback, Zipf-skewed load, mid-load failover, batch fan-out — run
# repeatedly under the race detector as a bounded soak (~30s), plus the
# worker-side batch/cache/backpressure tests it builds on.
cluster-test:
	$(GO) test -race -count=3 -timeout 15m ./internal/cluster/
	$(GO) test -race -run 'Batch|Healthz|Churn|DurationRing|ConcurrentSubmissions' \
		-timeout 10m ./internal/service/

# Durable-state soak: SOAK_CYCLES crash/restart cycles over one
# data-dir, rotating a kill through every persistence crash point
# (journal append, tombstone, report rename, compaction rename) and
# asserting the restarted daemon serves byte-identical reports from
# disk (see DESIGN.md §14).
SOAK_CYCLES ?= 12
soak:
	SOAK_CYCLES=$(SOAK_CYCLES) $(GO) test -race -tags faultinject \
		-run 'TestSoakCrashRestartCycles' -count=1 -timeout 30m ./internal/service/

# Run the analysis service locally.
serve:
	$(GO) run ./cmd/gpuscoutd -addr :8090

# Parallel-simulation benchmark + regression gate (what the nightly
# bench workflow runs); appends a dated entry to the
# BENCH_parallel_sim.json trajectory. The allocs/op ceiling (-gate-allocs)
# catches the hot path regressing back to per-cycle heap churn: a warm
# launch sits near 1-1.5k allocs (all launch setup), two orders of
# magnitude under the ceiling only if someone reintroduces per-warp or
# per-instruction allocation.
bench-parallel:
	$(GO) test -run '^$$' -bench BenchmarkParallelLaunch -cpu 1,4 \
		-benchtime=3x -benchmem -timeout 30m . | tee bench.txt
	$(GO) run ./cmd/benchgate -in bench.txt -gate-allocs 5000 \
		-out BENCH_parallel_sim.json

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "$$out"; exit 1; fi

# Per-architecture suite (CI: strategy.matrix.arch). sm70 runs the
# golden suite that proves the Volta backend is byte-identical to the
# pre-refactor compiler; sm80 runs the Ampere golden suite (cp.async
# lowering). Both run that backend's negative suite and lowering unit
# tests. Golden -run patterns are anchored: an unanchored
# 'TestGoldenReports' would also select the SM80 variant.
ARCH ?= sm70
test-arch:
	@case "$(ARCH)" in \
	sm70) \
		$(GO) test ./internal/advisor/ -run 'TestGoldenReports$$' -timeout 15m && \
		$(GO) test ./internal/scout/ -run 'TestDetectors(SilentOnOptimizedVariants|FireOnBaselines)/sm_70' && \
		$(GO) test ./internal/codegen/ -run 'TestSM70LoweringIsIdentity' ;; \
	sm80) \
		$(GO) test ./internal/advisor/ -run 'TestGoldenReportsSM80$$' -timeout 15m && \
		$(GO) test ./internal/scout/ -run 'TestDetectors(SilentOnOptimizedVariants|FireOnBaselines)/sm_80' && \
		$(GO) test ./internal/codegen/ -run 'TestSM80FusesAsyncCopy|TestFusionSkipsIneligibleLoads|TestAsyncCopyExecutes' ;; \
	*) echo "unknown ARCH=$(ARCH) (want sm70 or sm80)"; exit 2 ;; \
	esac

# Render the verified cross-arch comparison for one workload (uploaded
# as a CI artifact by the arch-matrix job; also a local smoke test of
# the -arch-compare path).
WORKLOAD ?= sgemm_shared
arch-report:
	$(GO) run ./cmd/gpuscout -workload $(WORKLOAD) -scale 64 \
		-arch sm70 -arch-compare sm80 -verify
