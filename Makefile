# Developer entry points. `make check` is the full gate (build + vet +
# race-enabled tests) referenced from README.md.

GO ?= go

.PHONY: check build vet test race serve

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulator-heavy packages are slow under the race detector on
# small machines; raise the per-package timeout well past the default.
race:
	$(GO) test -race -timeout 30m ./...

# Run the analysis service locally.
serve:
	$(GO) run ./cmd/gpuscoutd -addr :8090
