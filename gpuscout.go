// Package gpuscout is a Go reproduction of GPUscout — "GPUscout: Locating
// Data Movement-related Bottlenecks on GPUs" (Sen, Vanecek, Schulz,
// SC-W 2023) — together with every substrate the paper depends on:
//
//   - a Volta-class SASS instruction set with an nvdisasm-style parser and
//     printer, control-flow/liveness/def-use analyses (internal/sass);
//   - a kernel assembler and register allocator with real spilling to
//     local memory (internal/kasm, internal/codegen);
//   - a cubin container format (internal/cubin);
//   - an execution-driven V100 simulator producing warp-stall and
//     hardware-counter data (internal/sim, internal/memsys);
//   - stand-ins for the CUPTI PC Sampling API and the Nsight Compute
//     metric collector (internal/cupti, internal/ncu);
//   - the GPUscout analysis core: seven bottleneck detectors, stall
//     correlation, metric analysis, severity assessment and the text
//     report (internal/scout);
//   - the paper's case-study workloads (internal/workloads) and
//     experiment drivers regenerating every table and figure
//     (internal/experiments).
//
// This package is the public facade: everything an application needs to
// build or load kernels, run them on the simulated GPU, and analyze them
// with GPUscout.
package gpuscout

import (
	"context"
	"fmt"
	"os"

	"gpuscout/internal/advisor"
	"gpuscout/internal/cluster"
	"gpuscout/internal/codegen"
	"gpuscout/internal/cubin"
	"gpuscout/internal/gpu"
	"gpuscout/internal/kasm"
	"gpuscout/internal/sass"
	"gpuscout/internal/scout"
	"gpuscout/internal/service"
	"gpuscout/internal/sim"
	"gpuscout/internal/store"
	"gpuscout/internal/workloads"
)

// --- Architectures ---

// Arch describes a modeled GPU (see gpu.Arch for the parameters).
type Arch = gpu.Arch

// V100 returns the Tesla V100 description the paper's evaluation used.
func V100() Arch { return gpu.V100() }

// P100 returns a Pascal GPU: supported by the simulator and the static
// analysis, rejected by the (modeled) ncu — the --dry-run scenario.
func P100() Arch { return gpu.P100() }

// ArchByName resolves "sm_70"/"sm70"/"V100", "sm_60"/"P100",
// "sm_80"/"sm80"/"A100", ...
func ArchByName(name string) (Arch, error) { return gpu.ByName(name) }

// --- Kernels and SASS ---

// Kernel is a compiled GPU kernel (SASS instructions, resources, line
// table, optional embedded source).
type Kernel = sass.Kernel

// ParseSASS parses nvdisasm-style SASS text (as produced by PrintSASS or
// Binary.Disassemble) into a Kernel.
func ParseSASS(text string) (*Kernel, error) { return sass.Parse(text) }

// PrintSASS renders a kernel as nvdisasm-style text.
func PrintSASS(k *Kernel) string { return sass.Print(k) }

// --- Kernel construction (the nvcc stand-in) ---

// KernelBuilder constructs kernels from virtual-register instructions;
// see the examples/quickstart program for a walkthrough.
type KernelBuilder = kasm.Builder

// NewKernelBuilder starts a kernel named name for the given architecture
// tag ("sm_70"), attributing code to sourceFile.
func NewKernelBuilder(name, archTag, sourceFile string) *KernelBuilder {
	return kasm.NewBuilder(name, archTag, sourceFile)
}

// CompileOptions configure compilation; MaxRegs mirrors -maxrregcount and
// forces register spilling when small.
type CompileOptions = codegen.Options

// CompileKernel lowers a built program to executable SASS: register
// allocation (with spilling to local memory), scoreboard assignment and
// branch resolution.
func CompileKernel(p *kasm.Program, opts CompileOptions) (*Kernel, error) {
	return codegen.Compile(p, opts)
}

// --- Cubins ---

// Binary is a CUDA-binary container holding compiled kernels.
type Binary = cubin.Binary

// NewBinary creates an empty container for one architecture.
func NewBinary(arch string) *Binary { return cubin.New(arch) }

// LoadCubin reads and decodes a cubin file.
func LoadCubin(path string) (*Binary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gpuscout: %w", err)
	}
	return cubin.Decode(data)
}

// SaveCubin encodes and writes a cubin file.
func SaveCubin(path string, b *Binary) error {
	data, err := cubin.Encode(b)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// --- Simulated device and launches ---

// Device is a simulated GPU with device memory and texture bindings.
type Device = sim.Device

// NewDevice creates a device of the given architecture.
func NewDevice(arch Arch) *Device { return sim.NewDevice(arch) }

// Buffer is a device memory allocation.
type Buffer = sim.Buffer

// Dim3 is a CUDA grid/block dimension triple.
type Dim3 = sim.Dim3

// D1 makes a 1-D Dim3; D2 a 2-D one.
func D1(x int) Dim3    { return sim.D1(x) }
func D2(x, y int) Dim3 { return sim.D2(x, y) }

// LaunchSpec describes one kernel launch (kernel, grid, block, params).
type LaunchSpec = sim.LaunchSpec

// SimConfig controls the simulation (SM sampling, cycle cap).
type SimConfig = sim.Config

// SimResult is the outcome of a simulated launch: cycles, occupancy,
// stall integrals, and hardware counters.
type SimResult = sim.Result

// Launch runs a kernel on the device.
func Launch(dev *Device, spec LaunchSpec, cfg SimConfig) (*SimResult, error) {
	return sim.Launch(dev, spec, cfg)
}

// LaunchContext is Launch with cancellation: the simulation polls ctx and
// aborts promptly when it is cancelled or times out.
func LaunchContext(ctx context.Context, dev *Device, spec LaunchSpec, cfg SimConfig) (*SimResult, error) {
	return sim.LaunchContext(ctx, dev, spec, cfg)
}

// --- GPUscout analysis ---

// Options configure an analysis run (DryRun, sampling period, detectors).
type Options = scout.Options

// Report is a full GPUscout report; call Render for the text form.
type Report = scout.Report

// Degradation is one ledger entry in a degraded report: the stage and
// instrumented site that failed, how (panic/timeout/error), and what the
// report lost. A report either carries the data or an entry naming
// exactly why it does not.
type Degradation = scout.Degradation

// StageBudgets splits a deadline into per-stage slices so one slow stage
// degrades the report instead of timing the whole analysis out. The zero
// value uses DefaultStageBudgets; set Disabled for whole-deadline
// semantics.
type StageBudgets = scout.StageBudgets

// DefaultStageBudgets is the standard deadline split
// (parse 5% / sim 55% / scout 15% / verify 25%).
func DefaultStageBudgets() StageBudgets { return scout.DefaultStageBudgets() }

// ParseStageBudgets parses the -stage-budgets flag syntax: "" for the
// defaults, "off" to disable staged degradation, or four comma-separated
// weights for parse,sim,scout,verify (only the ratio matters).
func ParseStageBudgets(s string) (StageBudgets, error) { return scout.ParseStageBudgets(s) }

// Finding is one detected bottleneck with sites, stalls and metrics.
type Finding = scout.Finding

// RunFunc launches the analyzed kernel once for the dynamic pillars.
type RunFunc = scout.RunFunc

// RunContextFunc is RunFunc with cancellation; forward ctx into
// LaunchContext so aborting the analysis interrupts the launch.
type RunContextFunc = scout.RunContextFunc

// Analyze performs the full GPUscout workflow on a kernel: static SASS
// analysis, warp-stall sampling, metric collection, and evaluation.
func Analyze(arch Arch, k *Kernel, run RunFunc, opts Options) (*Report, error) {
	return scout.Analyze(arch, k, run, opts)
}

// AnalyzeContext is Analyze with cancellation: ctx is checked between the
// pillars and handed to run, so cancelling it interrupts the workflow.
func AnalyzeContext(ctx context.Context, arch Arch, k *Kernel, run RunContextFunc, opts Options) (*Report, error) {
	return scout.AnalyzeContext(ctx, arch, k, run, opts)
}

// DryRun performs only the static SASS analysis (no GPU involvement) —
// the tool's --dry-run mode, which also serves architectures ncu does not
// support.
func DryRun(arch Arch, k *Kernel) (*Report, error) {
	return scout.Analyze(arch, k, nil, Options{DryRun: true})
}

// WriteReportJSON writes a report's machine-readable form to a file —
// the data the paper's planned visual frontend (Fig. 7) would consume.
func WriteReportJSON(path string, rep *Report) error {
	data, err := rep.MarshalJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// A100 returns an Ampere GPU description (extensibility demo: the
// analyses run unchanged on newer architectures).
func A100() Arch { return gpu.A100() }

// Comparison is the Fig. 7 "Metrics Comparison" view.
type Comparison = scout.Comparison

// Compare diffs the metrics of two reports (before/after a fix).
func Compare(oldRep, newRep *Report) (*Comparison, error) {
	return scout.Compare(oldRep, newRep)
}

// --- Case-study workloads ---

// Workload is a prepared kernel + launch (the paper's case studies and
// auxiliary kernels).
type Workload = workloads.Workload

// WorkloadNames lists the available workloads.
func WorkloadNames() []string { return workloads.Names() }

// BuildWorkload constructs a registered workload at the given scale
// (0 = the workload's default) for the default Volta target.
func BuildWorkload(name string, scale int) (*Workload, error) {
	return workloads.Build(name, scale)
}

// BuildWorkloadArch constructs a registered workload lowered for the
// given architecture: the same arch-neutral kernel source, compiled by
// that arch's codegen backend (e.g. LDG+STS pairs fuse into
// cp.async-style LDGSTS on sm_80).
func BuildWorkloadArch(name string, scale int, arch Arch) (*Workload, error) {
	return workloads.BuildArch(name, scale, arch)
}

// RunWorkload executes a workload on a fresh device of the given
// architecture, verifies its output, and returns the result.
func RunWorkload(w *Workload, arch Arch, cfg SimConfig) (*SimResult, error) {
	dev := sim.NewDevice(arch)
	return workloads.Execute(w, dev, cfg)
}

// AnalyzeWorkload is the one-call path: build the named workload and run
// the full GPUscout pipeline on it.
func AnalyzeWorkload(name string, scale int, arch Arch, opts Options) (*Report, error) {
	return AnalyzeWorkloadContext(context.Background(), name, scale, arch, opts)
}

// --- Counterfactual verification (the advisor) ---

// Verification is the measured evidence attached to a finding when its
// recommendation was re-executed: speedup, verdict, stall/metric deltas.
type Verification = scout.Verification

// Verdict grades a verified recommendation: confirmed, neutral, refuted.
type Verdict = scout.Verdict

// Verdict values.
const (
	VerdictConfirmed = scout.VerdictConfirmed
	VerdictNeutral   = scout.VerdictNeutral
	VerdictRefuted   = scout.VerdictRefuted
)

// RecommendationPair maps a detector recommendation on a baseline
// workload to the optimized variant implementing it.
type RecommendationPair = advisor.Pair

// RecommendationPairs lists the advisor's recommendation->variant table.
func RecommendationPairs() []RecommendationPair { return advisor.Pairs() }

// VerifySummary counts the verdicts of one verification pass.
type VerifySummary = advisor.Summary

// VerifyWorkloadReport re-executes the paired optimized variant for every
// finding in a workload report, under the same simulator configuration,
// and attaches measured Verification blocks. The report must come from a
// non-dry-run analysis of the named workload at the given scale.
func VerifyWorkloadReport(rep *Report, name string, scale int, arch Arch, opts Options) (*VerifySummary, error) {
	return advisor.Verify(context.Background(), rep, name, scale, arch, opts.Sim)
}

// VerifyWorkloadReportContext is VerifyWorkloadReport with cancellation:
// each variant launch polls ctx, so per-job timeouts cover the re-runs.
func VerifyWorkloadReportContext(ctx context.Context, rep *Report, name string, scale int, arch Arch, opts Options) (*VerifySummary, error) {
	return advisor.Verify(ctx, rep, name, scale, arch, opts.Sim)
}

// --- Sensitivity sweeps (advisor v2) ---

// Sensitivity is a microarchitectural sensitivity sweep: the analyzed
// kernel re-simulated under each perturbation of the hardware resource
// matrix, with the dominant bottleneck resource named. Attached to the
// report and, filtered per bottleneck class, to each finding.
type Sensitivity = scout.Sensitivity

// ResourceDelta is one perturbation run of a sweep.
type ResourceDelta = scout.ResourceDelta

// StallSlice is the backward producer chain explaining one high-stall PC
// (enable with Options.StallSlices).
type StallSlice = scout.StallSlice

// SweepWorkloadReport re-simulates the analyzed workload under the
// perturbation matrix (±L1/L2 capacity, DRAM latency/bandwidth, shared
// banks, issue width, scoreboards), attaches the sensitivity analysis to
// the report and its findings, widens each finding's estimated speedup by
// the measured headroom, and re-orders the findings by payoff. The report
// must come from a non-dry-run analysis of the named workload.
func SweepWorkloadReport(rep *Report, name string, scale int, arch Arch, opts Options) (*Sensitivity, error) {
	return advisor.Sweep(context.Background(), rep, name, scale, arch, opts.Sim)
}

// SweepWorkloadReportContext is SweepWorkloadReport with cancellation:
// every perturbed launch polls ctx, so per-job timeouts cover the sweep.
func SweepWorkloadReportContext(ctx context.Context, rep *Report, name string, scale int, arch Arch, opts Options) (*Sensitivity, error) {
	return advisor.Sweep(ctx, rep, name, scale, arch, opts.Sim)
}

// --- The gpuscoutd analysis service ---

// Service is the long-lived analysis service behind cmd/gpuscoutd: a
// bounded job queue and worker pool, a content-addressed report cache,
// and a Prometheus-format /metrics endpoint, all fronting the Analyze
// pipeline. Serve its Handler() with net/http.
type Service = service.Service

// ServiceConfig tunes the service (workers, queue depth, cache size,
// per-job timeout, upload cap); the zero value selects defaults.
type ServiceConfig = service.Config

// AnalyzeServiceRequest is the POST /v1/analyze body: exactly one of a
// built-in workload name, SASS text, or cubin bytes.
type AnalyzeServiceRequest = service.AnalyzeRequest

// NewService builds the analysis service and starts its worker pool;
// call Close to drain it.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// ServiceVersion identifies the gpuscoutd build (see /healthz and the
// -version flag).
func ServiceVersion() string { return service.Version }

// Store is gpuscoutd's crash-safe persistence layer (-data-dir): the
// write-ahead job journal, the persistent content-addressed report
// store behind the in-memory cache, and durable quarantine-breaker
// state. Wire one into ServiceConfig.Store; close it after the service.
type Store = store.Store

// StoreOptions tunes a data directory (fsync policy, report-store byte
// bound, journal compaction threshold); the zero value selects safe
// defaults (fsync always, 1 GiB).
type StoreOptions = store.Options

// OpenStore opens (or initializes) a data directory, replaying the job
// journal and truncating any torn tail left by a crash.
func OpenStore(dir string, opts StoreOptions) (*Store, error) { return store.Open(dir, opts) }

// ParseFsyncPolicy parses the -fsync flag value ("always", "interval",
// "never").
func ParseFsyncPolicy(s string) (store.FsyncPolicy, error) { return store.ParseFsyncPolicy(s) }

// --- Clustered gpuscoutd ---

// Coordinator fronts a fleet of gpuscoutd worker replicas: consistent-
// hash routing by input fingerprint (cache affinity), failover along
// the ring, replica-aware backpressure, and batch fan-out. Serve its
// Handler() with net/http; call Start() first and Close() on shutdown.
type Coordinator = cluster.Coordinator

// ClusterConfig tunes the coordinator (replica list, vnodes, health
// poll interval, proxy/batch limits).
type ClusterConfig = cluster.Config

// NewCoordinator builds a coordinator over a static replica list.
func NewCoordinator(cfg ClusterConfig) (*Coordinator, error) { return cluster.New(cfg) }

// PeerCache is the worker-side half of the cluster's two-tier cache:
// wire its Fill method into ServiceConfig.PeerFill so local cache
// misses try the ring owner's cache before re-simulating.
type PeerCache = cluster.PeerCache

// PeerCacheConfig tunes the peer cache-fill client.
type PeerCacheConfig = cluster.PeerCacheConfig

// NewPeerCache builds the fill client for one worker replica. replicas
// must be the same static list the coordinator is configured with, and
// self this worker's own advertised URL.
func NewPeerCache(replicas []string, self string, cfg PeerCacheConfig) *PeerCache {
	return cluster.NewPeerCache(replicas, self, cfg)
}

// AnalyzeWorkloadContext is AnalyzeWorkload with cancellation, the path
// the gpuscoutd daemon uses for per-job timeouts. The workload is
// lowered for arch before analysis, so the report reflects that
// backend's instruction selection, not just its machine model.
func AnalyzeWorkloadContext(ctx context.Context, name string, scale int, arch Arch, opts Options) (*Report, error) {
	w, err := workloads.BuildArch(name, scale, arch)
	if err != nil {
		return nil, err
	}
	run := func(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
		dev := sim.NewDevice(arch)
		return workloads.ExecuteContext(ctx, w, dev, cfg)
	}
	return scout.AnalyzeContext(ctx, arch, w.Kernel, run, opts)
}

// --- Cross-architecture comparison ---

// ArchComparison is the cross-arch report: the same workload analyzed
// on two architectures, findings matched by detector and source line,
// each classified as persisting, appearing, or disappearing.
type ArchComparison = scout.ArchComparison

// ArchDelta is one finding tracked across the two architectures.
type ArchDelta = scout.ArchDelta

// CompareArchReports diffs two reports of the same kernel produced on
// different architectures.
func CompareArchReports(base, other *Report) *ArchComparison {
	return scout.CompareReports(base, other)
}

// AnalyzeWorkloadCrossArch analyzes the named workload on two
// architectures and returns the cross-arch comparison. With verify set,
// each report's recommendations are counterfactually verified first, so
// the deltas include advisor verdict changes (e.g. a fix confirmed on
// sm_70 that is moot on sm_80 because cp.async already hides the stall).
func AnalyzeWorkloadCrossArch(ctx context.Context, name string, scale int, base, other Arch, opts Options, verify bool) (*ArchComparison, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	reps := make([]*Report, 2)
	for i, arch := range []Arch{base, other} {
		rep, err := AnalyzeWorkloadContext(ctx, name, scale, arch, opts)
		if err != nil {
			return nil, fmt.Errorf("gpuscout: analyze %s on %s: %w", name, arch.SM, err)
		}
		if verify {
			if _, err := advisor.Verify(ctx, rep, name, scale, arch, opts.Sim); err != nil {
				return nil, fmt.Errorf("gpuscout: verify %s on %s: %w", name, arch.SM, err)
			}
		}
		reps[i] = rep
	}
	return scout.CompareReports(reps[0], reps[1]), nil
}
