// Quickstart: build a tiny kernel with the public builder API, run it on
// the simulated V100, and analyze it with GPUscout.
//
// The kernel mirrors this CUDA source (embedded below for line mapping):
//
//	__global__ void scale(const float* in, float* out, float f) {
//	    int i = blockIdx.x * blockDim.x + threadIdx.x;
//	    out[i] = in[i] * f;
//	}
package main

import (
	"fmt"
	"log"
	"math"

	"gpuscout"
	"gpuscout/internal/kasm"
)

func main() {
	// 1. "Compile" the kernel (the nvcc stand-in): virtual registers in,
	//    allocated SASS out.
	b := gpuscout.NewKernelBuilder("_Z5scalePKfPff", "sm_70", "scale.cu")
	b.SetSource([]string{
		/* 1 */ `__global__ void scale(const float* in, float* out, float f) {`,
		/* 2 */ `    int i = blockIdx.x * blockDim.x + threadIdx.x;`,
		/* 3 */ `    out[i] = in[i] * f;`,
		/* 4 */ `}`,
	})
	b.NumParams(3)
	b.Line(2)
	tid := b.TidX()
	cta := b.CtaidX()
	ntid := b.NTidX()
	i := b.IMad(kasm.VR(cta), kasm.VR(ntid), kasm.VR(tid))
	b.Line(3)
	in := b.ParamPtr(0)
	out := b.ParamPtr(1)
	f := b.Param32(2)
	off := b.Shl(kasm.VR(i), 2)
	src := b.IMadWide(kasm.VR(off), kasm.VImm(1), in)
	dst := b.IMadWide(kasm.VR(off), kasm.VImm(1), out)
	v := b.Ldg(src, 0, 4, false)
	r := b.FMul(kasm.VR(v), kasm.VR(f))
	b.Stg(dst, 0, r, 4)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	kernel, err := gpuscout.CompileKernel(prog, gpuscout.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== disassembly ===")
	fmt.Println(gpuscout.PrintSASS(kernel))

	// 2. Run it on the simulated V100 (the cudaMalloc/cudaMemcpy dance).
	arch := gpuscout.V100()
	dev := gpuscout.NewDevice(arch)
	const n = 4096
	inBuf := dev.MustAlloc(4 * n)
	outBuf := dev.MustAlloc(4 * n)
	vals := make([]float32, n)
	for j := range vals {
		vals[j] = float32(j)
	}
	if err := dev.WriteF32(inBuf, vals); err != nil {
		log.Fatal(err)
	}
	spec := gpuscout.LaunchSpec{
		Kernel: kernel,
		Grid:   gpuscout.D1(n / 256),
		Block:  gpuscout.D1(256),
		Params: []uint64{inBuf.Addr, outBuf.Addr, uint64(math.Float32bits(2.5))},
	}
	res, err := gpuscout.Launch(dev, spec, gpuscout.SimConfig{SampleSMs: arch.NumSMs})
	if err != nil {
		log.Fatal(err)
	}
	got, err := dev.ReadF32(outBuf, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== run ===\nout[0..3] = %v (expect 0, 2.5, 5, 7.5)\n", got)
	fmt.Printf("%.0f cycles, achieved occupancy %.0f%%\n\n",
		res.Cycles, 100*res.AchievedOccupancy)

	// 3. Analyze with GPUscout: the full three-pillar workflow.
	rep, err := gpuscout.Analyze(arch, kernel,
		func(cfg gpuscout.SimConfig) (*gpuscout.SimResult, error) {
			d := gpuscout.NewDevice(arch)
			ib := d.MustAlloc(4 * n)
			ob := d.MustAlloc(4 * n)
			if err := d.WriteF32(ib, vals); err != nil {
				return nil, err
			}
			s := spec
			s.Params = []uint64{ib.Addr, ob.Addr, uint64(math.Float32bits(2.5))}
			return gpuscout.Launch(d, s, cfg)
		},
		gpuscout.Options{Sim: gpuscout.SimConfig{SampleSMs: 4}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Render())
}
