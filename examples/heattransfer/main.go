// The §5.2 optimization loop on the 2D heat-transfer Jacobi stencil:
// GPUscout recommends texture (or shared) memory, vectorized loads,
// __restrict__, and flags the datatype conversions; we apply the texture
// fix and verify the tex_throttle warning the original analysis issued.
package main

import (
	"fmt"
	"log"

	"gpuscout"
)

const size = 1024 // grid edge (the paper used 8192; shapes scale)

func main() {
	arch := gpuscout.V100()
	opts := gpuscout.Options{Sim: gpuscout.SimConfig{SampleSMs: 1}}

	fmt.Println("### Step 1: analyze the naive Jacobi kernel ###")
	naive, err := gpuscout.AnalyzeWorkload("jacobi_naive", size, arch, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(naive.Render())

	// The paper's four recommendations, §5.2.
	want := map[string]bool{
		"texture_memory":      false,
		"vectorized_load":     false,
		"readonly_cache":      false,
		"datatype_conversion": false,
	}
	for i := range naive.Findings {
		if _, ok := want[naive.Findings[i].Analysis]; ok {
			want[naive.Findings[i].Analysis] = true
		}
	}
	for a, seen := range want {
		fmt.Printf("recommendation %-22s : %v\n", a, seen)
	}

	fmt.Println("\n### Step 2: switch the stencil reads to tex2D() ###")
	tex, err := gpuscout.AnalyzeWorkload("jacobi_texture", size, arch, opts)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := gpuscout.Compare(naive, tex)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cmp.Render())
	fmt.Printf("Paper: +61.1%% throughput (duration -39.2%%). Measured: %.2fx faster.\n", cmp.SpeedupX)
	for _, r := range cmp.Rows {
		if r.Metric == "smsp__warp_issue_stalled_tex_throttle_per_warp_active.pct" {
			fmt.Printf("tex_throttle per warp active: %.2f%% -> %.2f%% (paper: 0%% -> 24.65%%)\n", r.Old, r.New)
		}
	}

	fmt.Println("\n### Step 3: the cheap alternative — const __restrict__ ###")
	restr, err := gpuscout.AnalyzeWorkload("jacobi_restrict", size, arch, opts)
	if err != nil {
		log.Fatal(err)
	}
	cmp2, err := gpuscout.Compare(naive, restr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("__restrict__ effect: %.3fx (paper: +0.3%% — \"very little effect\")\n", cmp2.SpeedupX)
}
