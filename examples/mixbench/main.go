// The §5.1 optimization loop on Mixbench: analyze the naive kernel, read
// GPUscout's recommendations (use vectorized loads; consider shared
// memory), apply the Listing-2 fix (the float4 variant), re-analyze, and
// compare — reproducing the paper's 3.77x single-precision improvement
// and the long-scoreboard/occupancy shifts.
package main

import (
	"fmt"
	"log"

	"gpuscout"
)

func main() {
	arch := gpuscout.V100()
	opts := gpuscout.Options{Sim: gpuscout.SimConfig{SampleSMs: 1}}
	const iters = 96 // the paper's compute-iteration count

	fmt.Println("### Step 1: analyze the naive mixbench kernel (Fig. 5) ###")
	naive, err := gpuscout.AnalyzeWorkload("mixbench_sp_naive", iters, arch, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(naive.Render())

	fmt.Println("### Step 2: apply the fix (reinterpret_cast<float4*>, Listing 2) ###")
	vec, err := gpuscout.AnalyzeWorkload("mixbench_sp_vec4", iters, arch, opts)
	if err != nil {
		log.Fatal(err)
	}
	for i := range vec.Findings {
		f := &vec.Findings[i]
		if f.Analysis == "vectorized_load" {
			log.Fatal("vectorized_load still fires after the fix")
		}
	}
	fmt.Println("vectorized_load no longer fires on the fixed kernel")

	fmt.Println("\n### Step 3: metrics comparison (the Fig. 7 view) ###")
	cmp, err := gpuscout.Compare(naive, vec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cmp.Render())
	fmt.Printf("Paper: 3.77x for single precision at %d iterations. Measured: %.2fx.\n",
		iters, cmp.SpeedupX)
}
