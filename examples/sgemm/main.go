// The §5.3 optimization loop on SGEMM: GPUscout flags read-only pointers
// (__restrict__/const) and reused global data (shared memory) on the
// naive kernel; we apply shared-memory tiling (the 54x fix), watch the
// predicted MIO/long-scoreboard increases appear, then vectorize the tile
// loads (the paper's final +8.5% step) and compare register pressure.
package main

import (
	"fmt"
	"log"

	"gpuscout"
)

const n = 256 // matrix edge (the paper used 10240; shapes scale)

func main() {
	arch := gpuscout.V100()
	opts := gpuscout.Options{Sim: gpuscout.SimConfig{SampleSMs: 1}}

	fmt.Println("### Step 1: analyze the naive SGEMM ###")
	naive, err := gpuscout.AnalyzeWorkload("sgemm_naive", n, arch, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(naive.Render())

	fmt.Println("### Step 2: shared-memory tiling ###")
	shared, err := gpuscout.AnalyzeWorkload("sgemm_shared", n, arch, opts)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := gpuscout.Compare(naive, shared)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cmp.Render())
	fmt.Printf("Paper: 54x at 10240^2. Measured at %d^2: %.1fx.\n\n", n, cmp.SpeedupX)
	for _, r := range cmp.Rows {
		switch r.Metric {
		case "smsp__warp_issue_stalled_long_scoreboard_per_warp_active.pct":
			fmt.Printf("long_scoreboard: %.1f%% -> %.1f%% (paper: 7.8%% -> 30.6%%)\n", r.Old, r.New)
		case "smsp__warp_issue_stalled_mio_throttle_per_warp_active.pct":
			fmt.Printf("mio_throttle:    %.2f%% -> %.2f%% (paper: 0.03%% -> 4.5%%)\n", r.Old, r.New)
		}
	}

	fmt.Println("\n### Step 3: vectorize the tile loads (float4) ###")
	vec, err := gpuscout.AnalyzeWorkload("sgemm_shared_vec", n, arch, opts)
	if err != nil {
		log.Fatal(err)
	}
	cmp2, err := gpuscout.Compare(shared, vec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vectorized tile loads: %.3fx over shared (paper: +8.5%%)\n", cmp2.SpeedupX)
	for _, r := range cmp2.Rows {
		if r.Metric == "launch__registers_per_thread" {
			fmt.Printf("registers per thread: %.0f -> %.0f (paper: 25 -> 72)\n", r.Old, r.New)
		}
	}
}
